"""Command-line interface for the experiment harness.

Examples::

    repro-bench --list
    repro-bench fig7a fig8
    repro-bench table3 --scale quick
    repro-bench all --scale default --csv-dir out/
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.config import BenchConfig
from repro.bench.context import BenchContext
from repro.bench.experiments import GROUPS, REGISTRY, resolve
from repro.bench.charts import render_chart
from repro.bench.shapes import format_checks, validate, validate_cross
from repro.bench.tables import format_result, result_to_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables and figures of 'On Processing Top-k "
            "Spatio-Textual Preference Queries' (EDBT 2015)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig7a) or groups (fig7, table3, all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "default", "paper"],
        default=os.environ.get("REPRO_BENCH_SCALE", "default"),
        help="parameter grid scale (default: %(default)s)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render paper-style stacked bars instead of tables",
    )
    parser.add_argument(
        "--check-shapes",
        action="store_true",
        help="validate the paper's qualitative claims against the results",
    )
    parser.add_argument(
        "--csv-dir",
        metavar="DIR",
        help="also write one CSV per experiment into DIR",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("experiments:")
        for experiment_id, experiment in sorted(REGISTRY.items()):
            print(f"  {experiment_id:18s} {experiment.title}")
        print("groups:")
        for group, members in sorted(GROUPS.items()):
            print(f"  {group:18s} {len(members)} experiments")
        return 0

    cfg = {
        "quick": BenchConfig.quick,
        "default": BenchConfig.default,
        "paper": BenchConfig.paper,
    }[args.scale]()
    ctx = BenchContext(cfg)

    try:
        experiments = resolve(args.experiments)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    all_results = {}
    for experiment in experiments:
        started = time.perf_counter()
        result = experiment.run(ctx)
        all_results[result.experiment_id] = result
        elapsed = time.perf_counter() - started
        if args.chart:
            print(render_chart(result))
        else:
            print(format_result(result))
        if args.check_shapes:
            checks = validate(result)
            if checks:
                print(format_checks(checks))
        print(f"   [harness time: {elapsed:.1f}s at scale={args.scale}]")
        print()
        if args.csv_dir:
            path = os.path.join(args.csv_dir, f"{result.experiment_id}.csv")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result_to_csv(result))
            print(f"   wrote {path}")
    if args.check_shapes:
        cross = validate_cross(all_results)
        if cross:
            print("cross-experiment claims:")
            print(format_checks(cross))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
