"""Benchmark configuration: parameter grids at three scales.

``paper()`` is the grid of Table 2 verbatim.  ``default()`` divides the
cardinalities by 10 and the query count by 20 so the whole suite runs on
a laptop in pure Python; ``quick()`` shrinks further for CI and the
pytest-benchmark files.  The reproduced *shapes* (who wins, growth rates,
crossovers) are scale-stable — EXPERIMENTS.md records the scale used for
each reported run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


@dataclass(frozen=True, slots=True)
class BenchConfig:
    """Parameter grid for the experiment harness (paper Table 2)."""

    # dataset parameters
    object_cardinality: int = 10_000
    feature_cardinality: int = 10_000
    cardinality_sweep: tuple[int, ...] = (5_000, 10_000, 25_000, 50_000)
    c: int = 2
    c_sweep: tuple[int, ...] = (2, 3, 4, 5)
    vocab_size: int = 128
    vocab_sweep: tuple[int, ...] = (64, 128, 192, 256)
    real_scale: float = 0.1
    # query parameters.  The paper uses r = 0.01 at |O| = 100K; scaled-down
    # grids scale r by sqrt(100K / |O|) to keep the expected number of
    # in-range objects (~pi r^2 |O|) constant, otherwise STPS degenerates
    # into draining the feature streams for near-empty neighborhoods.
    radius: float = 0.032
    radius_sweep: tuple[float, ...] = (0.016, 0.032, 0.064, 0.128, 0.256)
    k: int = 10
    k_sweep: tuple[int, ...] = (5, 10, 20, 40, 80)
    lam: float = 0.5
    lam_sweep: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    keywords_per_set: int = 3
    keywords_sweep: tuple[int, ...] = (1, 3, 5, 7, 9)
    # harness parameters
    queries_per_point: int = 20
    stds_queries_per_point: int = 3
    nn_queries_per_point: int = 10
    seed: int = 0
    page_size: int = 4096
    # Per-index LRU buffer: sized to hold the upper tree levels but not
    # the leaves, so leaf-level accesses are physical reads (the paper's
    # indexes are disk-resident).
    buffer_pages: int = 48

    @classmethod
    def default(cls) -> "BenchConfig":
        """Laptop-scale grid (1/10 of the paper's cardinalities)."""
        return cls()

    @classmethod
    def quick(cls) -> "BenchConfig":
        """Small grid for CI and pytest-benchmark runs."""
        return cls(
            object_cardinality=2_000,
            feature_cardinality=2_000,
            cardinality_sweep=(1_000, 2_000, 4_000),
            c_sweep=(2, 3),
            vocab_size=64,
            vocab_sweep=(64, 128),
            real_scale=0.03,
            radius=0.07,
            radius_sweep=(0.035, 0.07, 0.14),
            k_sweep=(5, 10, 20),
            lam_sweep=(0.1, 0.5, 0.9),
            keywords_sweep=(1, 3, 5),
            queries_per_point=5,
            stds_queries_per_point=2,
            nn_queries_per_point=3,
        )

    @classmethod
    def paper(cls) -> "BenchConfig":
        """The full grid of Table 2 (hours of pure-Python runtime)."""
        return cls(
            object_cardinality=100_000,
            feature_cardinality=100_000,
            cardinality_sweep=(50_000, 100_000, 500_000, 1_000_000),
            vocab_size=128,
            real_scale=1.0,
            radius=0.01,
            radius_sweep=(0.005, 0.01, 0.02, 0.04, 0.08),
            queries_per_point=1000,
            stds_queries_per_point=10,
            nn_queries_per_point=100,
        )

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Scale selected by ``REPRO_BENCH_SCALE`` (quick|default|paper)."""
        scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
        factory = {
            "quick": cls.quick,
            "default": cls.default,
            "paper": cls.paper,
        }.get(scale)
        if factory is None:
            raise ValueError(
                f"REPRO_BENCH_SCALE={scale!r}; use quick, default or paper"
            )
        return factory()

    def with_overrides(self, **kwargs) -> "BenchConfig":
        """Copy with individual fields replaced."""
        return replace(self, **kwargs)
