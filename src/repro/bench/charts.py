"""ASCII stacked-bar charts mirroring the paper's figures.

The paper plots per-query execution time as stacked bars: a dark segment
for I/O time, a white segment for CPU time, and (for the NN variant,
Figures 13-14) striped segments for the Voronoi-cell work.  This module
renders the same bars in text:

    █  simulated I/O time
    ░  CPU time
    ▓  Voronoi-cell share (I/O + CPU), overlaid at the bar's end

so `repro-bench --chart` output can be eyeballed against the paper.
"""

from __future__ import annotations

from repro.bench.experiments import ExperimentResult
from repro.bench.timing import Measurement

BAR_WIDTH = 44
IO_CHAR = "█"
CPU_CHAR = "░"
VORONOI_CHAR = "▓"


def render_chart(result: ExperimentResult, width: int = BAR_WIDTH) -> str:
    """One bar per (x value, series), scaled to the panel's maximum."""
    peak = max(
        (m.total_ms for ms in result.series.values() for m in ms),
        default=0.0,
    )
    lines = [
        f"{result.experiment_id}: {result.title}",
        f"(reproduces {result.paper_ref}; {IO_CHAR}=I/O {CPU_CHAR}=CPU"
        f" {VORONOI_CHAR}=Voronoi share)",
        "",
    ]
    label_width = max((len(label) for label in result.series), default=0)
    x_width = max((len(str(x)) for x in result.x_values), default=0)
    x_width = max(x_width, len(result.x_label))
    lines.append(f"{result.x_label:>{x_width}}")
    for i, x in enumerate(result.x_values):
        for j, (label, measurements) in enumerate(result.series.items()):
            m = measurements[i]
            bar = _bar(m, peak, width)
            x_cell = str(x) if j == 0 else ""
            lines.append(
                f"{x_cell:>{x_width}}  {label:<{label_width}}  {bar}"
                f" {m.total_ms:9.1f}ms"
            )
        lines.append("")
    return "\n".join(lines)


def _bar(m: Measurement, peak: float, width: int) -> str:
    if peak <= 0.0:
        return ""
    total_cells = round(m.total_ms / peak * width)
    if m.total_ms > 0 and total_cells == 0:
        total_cells = 1
    io_cells = round(m.io_ms / peak * width)
    io_cells = min(io_cells, total_cells)
    cpu_cells = total_cells - io_cells
    bar = IO_CHAR * io_cells + CPU_CHAR * cpu_cells
    # Overlay the Voronoi share (I/O + CPU attributed to cell building)
    # at the tail of the bar, as the paper's striped segments.
    voronoi_cells = min(round(m.voronoi_ms / peak * width), total_cells)
    if voronoi_cells > 0:
        bar = bar[:-voronoi_cells] + VORONOI_CHAR * voronoi_cells
    return bar.ljust(width)
