"""Benchmark harness: experiment registry, measurement, reporting."""

from repro.bench.charts import render_chart
from repro.bench.config import BenchConfig
from repro.bench.context import BenchContext
from repro.bench.experiments import (
    GROUPS,
    REGISTRY,
    Experiment,
    ExperimentResult,
    resolve,
)
from repro.bench.shapes import ShapeCheck, format_checks, validate
from repro.bench.tables import format_result, result_to_csv
from repro.bench.timing import Measurement, measure

__all__ = [
    "BenchConfig",
    "BenchContext",
    "Experiment",
    "ExperimentResult",
    "GROUPS",
    "Measurement",
    "REGISTRY",
    "format_result",
    "render_chart",
    "measure",
    "resolve",
    "result_to_csv",
    "ShapeCheck",
    "validate",
    "format_checks",
]
