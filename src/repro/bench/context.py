"""Benchmark context: cached datasets, indexes and workloads.

Index construction dominates harness runtime (a 50K-feature SRT build is
far slower than the queries it serves), so the context memoizes datasets
and built processors by their full parameter tuple; sweeps that revisit
the default setting reuse the same build, as the paper's own harness
would.
"""

from __future__ import annotations

from repro.bench.config import BenchConfig
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.data.realworld import RealWorldData, real_world
from repro.data.synthetic import (
    make_vocabulary,
    synthetic_feature_sets,
    synthetic_objects,
)
from repro.data.workload import WorkloadSpec, make_workload
from repro.model.dataset import FeatureDataset, ObjectDataset


class BenchContext:
    """Caches everything the experiments build."""

    def __init__(self, cfg: BenchConfig) -> None:
        self.cfg = cfg
        self._objects: dict = {}
        self._feature_sets: dict = {}
        self._processors: dict = {}
        self._real: RealWorldData | None = None

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def objects(self, n: int | None = None) -> ObjectDataset:
        n = n if n is not None else self.cfg.object_cardinality
        if n not in self._objects:
            self._objects[n] = synthetic_objects(n, seed=self.cfg.seed)
        return self._objects[n]

    def feature_sets(
        self,
        c: int | None = None,
        n: int | None = None,
        vocab: int | None = None,
    ) -> list[FeatureDataset]:
        c = c if c is not None else self.cfg.c
        n = n if n is not None else self.cfg.feature_cardinality
        vocab = vocab if vocab is not None else self.cfg.vocab_size
        key = (c, n, vocab)
        if key not in self._feature_sets:
            self._feature_sets[key] = synthetic_feature_sets(
                c, n, make_vocabulary(vocab), seed=self.cfg.seed + 1
            )
        return self._feature_sets[key]

    def real(self) -> RealWorldData:
        if self._real is None:
            self._real = real_world(self.cfg.real_scale, seed=self.cfg.seed + 7)
        return self._real

    # ------------------------------------------------------------------
    # processors
    # ------------------------------------------------------------------
    def synthetic_processor(
        self,
        index: str,
        c: int | None = None,
        n_obj: int | None = None,
        n_feat: int | None = None,
        vocab: int | None = None,
    ) -> QueryProcessor:
        key = ("synthetic", index, c, n_obj, n_feat, vocab)
        if key not in self._processors:
            self._processors[key] = QueryProcessor.build(
                self.objects(n_obj),
                self.feature_sets(c, n_feat, vocab),
                index=index,
                page_size=self.cfg.page_size,
                buffer_pages=self.cfg.buffer_pages,
            )
        return self._processors[key]

    def real_processor(self, index: str) -> QueryProcessor:
        key = ("real", index)
        if key not in self._processors:
            data = self.real()
            self._processors[key] = QueryProcessor.build(
                data.hotels,
                data.feature_sets,
                index=index,
                page_size=self.cfg.page_size,
                buffer_pages=self.cfg.buffer_pages,
            )
        return self._processors[key]

    # ------------------------------------------------------------------
    # workloads
    # ------------------------------------------------------------------
    def workload(
        self,
        feature_sets: list[FeatureDataset],
        variant: Variant = Variant.RANGE,
        n_queries: int | None = None,
        radius: float | None = None,
        k: int | None = None,
        lam: float | None = None,
        keywords_per_set: int | None = None,
    ) -> list[PreferenceQuery]:
        cfg = self.cfg
        spec = WorkloadSpec(
            n_queries=n_queries if n_queries is not None else cfg.queries_per_point,
            k=k if k is not None else cfg.k,
            radius=radius if radius is not None else cfg.radius,
            lam=lam if lam is not None else cfg.lam,
            keywords_per_set=(
                keywords_per_set
                if keywords_per_set is not None
                else cfg.keywords_per_set
            ),
            variant=variant,
            seed=cfg.seed + 42,
        )
        return make_workload(feature_sets, spec)
