"""Automated validation of the paper's qualitative claims.

The reproduction's contract is not matching absolute milliseconds (the
substrate differs) but matching *shapes*: who wins, in which direction a
curve moves, where the extra cost sits.  This module encodes those
claims, one per experiment panel, and checks them against measured
:class:`~repro.bench.experiments.ExperimentResult` objects:

* ``table3*`` — STDS grows with the swept parameter; SRT <= IR².
* ``fig7*`` / ``fig9*`` / ``fig8b`` — SRT beats IR² on average.
* ``fig8a`` — cost decreases as the radius grows (the paper's most
  distinctive curve).
* ``fig8b`` / ``fig9b`` — cost grows with k.
* ``fig8c`` / ``fig9c`` — roughly flat in λ.
* ``fig13*`` / ``fig14*`` — the NN variant's Voronoi share is material.

``repro-bench --check-shapes`` prints one PASS/FAIL line per claim;
EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.experiments import ExperimentResult
from repro.bench.timing import Measurement

# Tolerance for "A is not worse than B" comparisons: averaged over a
# sweep, measurement noise of a few percent must not flip a verdict.
NOISE = 0.10


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """Outcome of one claim."""

    experiment_id: str
    claim: str
    passed: bool
    detail: str


def _mean_total(measurements: list[Measurement]) -> float:
    return sum(m.total_ms for m in measurements) / len(measurements)


def _series(result: ExperimentResult, substring: str) -> list[Measurement]:
    for label, measurements in result.series.items():
        if substring in label:
            return measurements
    raise KeyError(f"{result.experiment_id}: no series matching {substring!r}")


def _check_srt_wins(result: ExperimentResult) -> ShapeCheck:
    srt = _mean_total(_series(result, "SRT"))
    ir2 = _mean_total(_series(result, "IR2"))
    passed = srt <= ir2 * (1.0 + NOISE)
    return ShapeCheck(
        result.experiment_id,
        "SRT-index <= IR²-tree (mean over sweep)",
        passed,
        f"SRT {srt:.1f}ms vs IR² {ir2:.1f}ms",
    )


def _check_monotone(
    result: ExperimentResult, increasing: bool, claim: str
) -> ShapeCheck:
    """Endpoint monotonicity of the mean-over-series curve."""
    means = [
        sum(ms[i].total_ms for ms in result.series.values())
        / len(result.series)
        for i in range(len(result.x_values))
    ]
    first, last = means[0], means[-1]
    passed = last >= first * (1.0 - NOISE) if increasing else (
        last <= first * (1.0 + NOISE)
    )
    return ShapeCheck(
        result.experiment_id,
        claim,
        passed,
        f"{result.x_label}: {result.x_values[0]} -> {result.x_values[-1]} "
        f"gives {first:.1f}ms -> {last:.1f}ms",
    )


def _check_flat(result: ExperimentResult, claim: str) -> ShapeCheck:
    means = [
        sum(ms[i].total_ms for ms in result.series.values())
        / len(result.series)
        for i in range(len(result.x_values))
    ]
    lo, hi = min(means), max(means)
    passed = hi <= lo * 2.5  # "relatively stable" per the paper
    return ShapeCheck(
        result.experiment_id,
        claim,
        passed,
        f"min {lo:.1f}ms / max {hi:.1f}ms over {result.x_label}",
    )


def _check_voronoi_material(result: ExperimentResult) -> ShapeCheck:
    total = vor = 0.0
    for measurements in result.series.values():
        for m in measurements:
            total += m.total_ms
            vor += m.voronoi_ms
    share = vor / total if total else 0.0
    passed = share >= 0.2
    return ShapeCheck(
        result.experiment_id,
        "Voronoi-cell work is a material share of NN cost",
        passed,
        f"voronoi share {share * 100:.0f}%",
    )


def validate(result: ExperimentResult) -> list[ShapeCheck]:
    """All registered claims that apply to this experiment's panel."""
    eid = result.experiment_id
    checks: list[ShapeCheck] = []
    # SRT <= IR² is claimed for STPS (Figures 7-9).  For STDS (Table 3)
    # the paper reports near-parity; on this substrate the batched scan
    # is spatially driven and the SRT's spatially looser nodes cost more
    # I/O, so no SRT-wins claim is checked there (see EXPERIMENTS.md).
    if eid.startswith(("fig7", "fig8", "fig9")):
        checks.append(_check_srt_wins(result))
    if eid.startswith("table3"):
        checks.append(
            _check_monotone(
                result, increasing=True, claim="STDS cost grows with the parameter"
            )
        )
    if eid in ("fig8a", "fig9a"):
        checks.append(
            _check_monotone(
                result,
                increasing=False,
                claim="range-score cost decreases as r grows",
            )
        )
    if eid in ("fig8b", "fig9b", "fig14b"):
        checks.append(
            _check_monotone(
                result, increasing=True, claim="cost grows with k"
            )
        )
    if eid in ("fig8c", "fig9c", "fig12c"):
        checks.append(
            _check_flat(result, "cost roughly flat in the smoothing λ")
        )
    if eid.startswith(("fig13", "fig14")):
        checks.append(_check_voronoi_material(result))
    if eid == "ablation_index":
        srt = _mean_total(_series(result, "SRT"))
        irt = _mean_total(_series(result, "IRTREE"))
        checks.append(
            ShapeCheck(
                eid,
                "SRT (4-d clustering) <= IR-tree (spatial clustering)",
                srt <= irt * (1.0 + NOISE),
                f"SRT {srt:.1f}ms vs IR-tree {irt:.1f}ms",
            )
        )
    return checks


def validate_cross(results: dict[str, ExperimentResult]) -> list[ShapeCheck]:
    """Claims spanning experiments: STPS orders of magnitude below STDS.

    Compares Table 3 panels against the matching Figure 7 panels when a
    run produced both.
    """
    checks: list[ShapeCheck] = []
    for suffix in "abcd":
        stds_result = results.get(f"table3{suffix}")
        stps_result = results.get(f"fig7{suffix}")
        if stds_result is None or stps_result is None:
            continue
        stds_mean = sum(
            _mean_total(ms) for ms in stds_result.series.values()
        ) / len(stds_result.series)
        stps_mean = sum(
            _mean_total(ms) for ms in stps_result.series.values()
        ) / len(stps_result.series)
        checks.append(
            ShapeCheck(
                f"table3{suffix}/fig7{suffix}",
                "STPS is at least 5x faster than STDS",
                stps_mean * 5 <= stds_mean,
                f"STDS {stds_mean:.0f}ms vs STPS {stps_mean:.0f}ms "
                f"({stds_mean / max(stps_mean, 1e-9):.0f}x)",
            )
        )
    return checks


def format_checks(checks: list[ShapeCheck]) -> str:
    """One PASS/FAIL line per claim."""
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(
            f"   [{status}] {check.claim} — {check.detail}"
        )
    return "\n".join(lines)
