"""Geometric primitives: points, rectangles, half-planes, convex polygons."""

from repro.geometry.halfplane import EPS, HalfPlane, bisector_halfplane
from repro.geometry.point import Coords, as_point, dist, dist2, midpoint
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect, mbr_of_points

__all__ = [
    "EPS",
    "Coords",
    "ConvexPolygon",
    "HalfPlane",
    "Rect",
    "as_point",
    "bisector_halfplane",
    "dist",
    "dist2",
    "mbr_of_points",
    "midpoint",
]
