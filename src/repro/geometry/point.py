"""Point primitives and distance functions.

The paper works in a normalized ``[0, 1] x [0, 1]`` space with Euclidean
distances (Section 3).  Points are plain tuples of floats so they stay cheap
to hash, compare and serialize; the helpers here provide the distance
algebra used across the index and query layers.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import GeometryError

Coords = tuple[float, ...]


def as_point(coords: Sequence[float]) -> Coords:
    """Validate and normalize a coordinate sequence into a point tuple.

    Raises :class:`GeometryError` for empty or non-finite input.
    """
    point = tuple(float(c) for c in coords)
    if not point:
        raise GeometryError("a point needs at least one coordinate")
    if any(math.isnan(c) or math.isinf(c) for c in point):
        raise GeometryError(f"non-finite coordinate in point {point!r}")
    return point


def dist(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points of equal dimensionality."""
    if len(a) != len(b):
        raise GeometryError(
            f"dimension mismatch: {len(a)}-d point vs {len(b)}-d point"
        )
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def dist2(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the sqrt when only comparing)."""
    if len(a) != len(b):
        raise GeometryError(
            f"dimension mismatch: {len(a)}-d point vs {len(b)}-d point"
        )
    return sum((x - y) ** 2 for x, y in zip(a, b))


def midpoint(a: Sequence[float], b: Sequence[float]) -> Coords:
    """Point halfway between ``a`` and ``b``."""
    if len(a) != len(b):
        raise GeometryError(
            f"dimension mismatch: {len(a)}-d point vs {len(b)}-d point"
        )
    return tuple((x + y) / 2.0 for x, y in zip(a, b))
