"""Half-planes and perpendicular bisectors.

The nearest-neighbor STPQ variant (Section 7.2 of the paper) retrieves data
objects through Voronoi cells.  A Voronoi cell is an intersection of
half-planes, each induced by the perpendicular bisector between the cell's
site and a competing feature object.  ``HalfPlane`` represents the locus
``a*x + b*y <= c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import GeometryError

# Tolerance for "on the boundary" tests.  The data space is [0,1]^2 so an
# absolute epsilon is appropriate.
EPS = 1e-9


@dataclass(frozen=True, slots=True)
class HalfPlane:
    """The closed half-plane ``a*x + b*y <= c`` with ``(a, b) != (0, 0)``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if abs(self.a) < EPS and abs(self.b) < EPS:
            raise GeometryError("degenerate half-plane: zero normal vector")

    def value(self, point: Sequence[float]) -> float:
        """Signed value ``a*x + b*y - c`` (negative strictly inside)."""
        return self.a * point[0] + self.b * point[1] - self.c

    def contains(self, point: Sequence[float]) -> bool:
        """True when ``point`` satisfies ``a*x + b*y <= c`` (within EPS).

        The tolerance is scale-invariant: the raw value is compared
        against ``EPS * ||(a, b)||`` so the slack is EPS *in Euclidean
        distance to the boundary line* regardless of how the coefficients
        are scaled.  (An absolute epsilon on the raw value would grant
        bisectors of nearly-coincident sites — tiny normal vectors — a
        geometric slack far larger than EPS.)
        """
        return self.value(point) <= EPS * math.hypot(self.a, self.b)

    def distance_to_boundary(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the bounding line."""
        norm = math.hypot(self.a, self.b)
        return abs(self.value(point)) / norm


def bisector_halfplane(
    site: Sequence[float], other: Sequence[float]
) -> HalfPlane:
    """Half-plane of points at least as close to ``site`` as to ``other``.

    The perpendicular bisector of segment (site, other) splits the plane;
    the returned half-plane is the side containing ``site``.  Raises
    :class:`GeometryError` when the two points coincide (no bisector).
    """
    sx, sy = float(site[0]), float(site[1])
    ox, oy = float(other[0]), float(other[1])
    dx, dy = ox - sx, oy - sy
    if abs(dx) < EPS and abs(dy) < EPS:
        raise GeometryError("bisector of coincident points is undefined")
    # dist(p, site) <= dist(p, other)
    #   <=>  (x-sx)^2 + (y-sy)^2 <= (x-ox)^2 + (y-oy)^2
    #   <=>  2*(ox-sx)*x + 2*(oy-sy)*y <= ox^2+oy^2-sx^2-sy^2
    a = 2.0 * dx
    b = 2.0 * dy
    c = ox * ox + oy * oy - sx * sx - sy * sy
    return HalfPlane(a, b, c)
