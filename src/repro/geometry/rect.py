"""Axis-aligned rectangles (minimum bounding rectangles).

``Rect`` is the MBR type used by every R-tree flavour in the repo.  It is
dimension-generic: the object R-tree and the IR²-tree use 2-d rectangles
while the SRT-index sorts points in a mapped 4-d space (Section 4.2 of the
paper) and keeps 2-d spatial MBRs alongside its aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.point import Coords


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-aligned rectangle given by its low and high corner points."""

    low: Coords
    high: Coords

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise GeometryError(
                f"corner dimensionality mismatch: {self.low!r} vs {self.high!r}"
            )
        if not self.low:
            raise GeometryError("a rectangle needs at least one dimension")
        if any(lo > hi for lo, hi in zip(self.low, self.high)):
            raise GeometryError(f"inverted rectangle: {self.low!r} > {self.high!r}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """Degenerate rectangle covering a single point."""
        coords = tuple(float(c) for c in point)
        return cls(coords, coords)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing all input rectangles."""
        rects = list(rects)
        if not rects:
            raise GeometryError("union of zero rectangles is undefined")
        dim = len(rects[0].low)
        low = tuple(min(r.low[d] for r in rects) for d in range(dim))
        high = tuple(max(r.high[d] for r in rects) for d in range(dim))
        return cls(low, high)

    @classmethod
    def bounding(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """Smallest rectangle enclosing all input points."""
        pts = [tuple(float(c) for c in p) for p in points]
        if not pts:
            raise GeometryError("bounding box of zero points is undefined")
        dim = len(pts[0])
        low = tuple(min(p[d] for p in pts) for d in range(dim))
        high = tuple(max(p[d] for p in pts) for d in range(dim))
        return cls(low, high)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.low)

    @property
    def center(self) -> Coords:
        """Geometric center of the rectangle."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    def extent(self, d: int) -> float:
        """Side length along dimension ``d``."""
        return self.high[d] - self.low[d]

    def area(self) -> float:
        """Hyper-volume (product of all side lengths)."""
        result = 1.0
        for lo, hi in zip(self.low, self.high):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree 'margin' metric)."""
        return sum(hi - lo for lo, hi in zip(self.low, self.high))

    # ------------------------------------------------------------------
    # set relations
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside (or on the border of) the rect."""
        self._check_dim(len(point))
        return all(
            lo <= c <= hi for lo, c, hi in zip(self.low, point, self.high)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` is fully inside this rectangle."""
        self._check_dim(other.dim)
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share at least a boundary point."""
        self._check_dim(other.dim)
        return all(
            slo <= ohi and olo <= shi
            for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high)
        )

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both rectangles."""
        self._check_dim(other.dim)
        low = tuple(min(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(a, b) for a, b in zip(self.high, other.high))
        return Rect(low, high)

    def union_point(self, point: Sequence[float]) -> "Rect":
        """Smallest rectangle enclosing this rectangle and ``point``."""
        self._check_dim(len(point))
        low = tuple(min(a, float(b)) for a, b in zip(self.low, point))
        high = tuple(max(a, float(b)) for a, b in zip(self.high, point))
        return Rect(low, high)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (R-tree choose-subtree)."""
        return self.union(other).area() - self.area()

    def intersection_area(self, other: "Rect") -> float:
        """Hyper-volume of the overlap region (0.0 when disjoint)."""
        self._check_dim(other.dim)
        result = 1.0
        for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high):
            side = min(shi, ohi) - max(slo, olo)
            if side <= 0.0:
                return 0.0
            result *= side
        return result

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def mindist(self, point: Sequence[float]) -> float:
        """Minimum Euclidean distance from ``point`` to the rectangle.

        Zero when the point is inside.  This is the classic R-tree MINDIST
        used as the pruning bound in Algorithms 2 and 4 of the paper.
        """
        self._check_dim(len(point))
        total = 0.0
        for lo, c, hi in zip(self.low, point, self.high):
            if c < lo:
                total += (lo - c) ** 2
            elif c > hi:
                total += (c - hi) ** 2
        return math.sqrt(total)

    def maxdist(self, point: Sequence[float]) -> float:
        """Maximum Euclidean distance from ``point`` to the rectangle."""
        self._check_dim(len(point))
        total = 0.0
        for lo, c, hi in zip(self.low, point, self.high):
            total += max(abs(c - lo), abs(c - hi)) ** 2
        return math.sqrt(total)

    def mindist_rect(self, other: "Rect") -> float:
        """Minimum Euclidean distance between two rectangles."""
        self._check_dim(other.dim)
        total = 0.0
        for slo, shi, olo, ohi in zip(self.low, self.high, other.low, other.high):
            if ohi < slo:
                total += (slo - ohi) ** 2
            elif olo > shi:
                total += (olo - shi) ** 2
        return math.sqrt(total)

    def _check_dim(self, other_dim: int) -> None:
        if other_dim != self.dim:
            raise GeometryError(
                f"dimension mismatch: {self.dim}-d rect vs {other_dim}-d argument"
            )


def mbr_of_points(points: Iterable[Sequence[float]]) -> Rect:
    """Convenience alias for :meth:`Rect.bounding`."""
    return Rect.bounding(points)
