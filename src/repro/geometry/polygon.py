"""Convex polygons with half-plane clipping.

Used by the nearest-neighbor query variant to maintain Voronoi cells
incrementally: start from a bounding rectangle and clip with one
perpendicular-bisector half-plane per competing feature (Sutherland-Hodgman
style clipping specialised to convex input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import GeometryError
from repro.geometry.halfplane import EPS, HalfPlane
from repro.geometry.point import Coords, dist
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class ConvexPolygon:
    """A (possibly empty) convex polygon given by its vertex ring.

    Vertices are in counter-clockwise order.  An empty vertex list denotes
    the empty polygon, which clipping can produce and which downstream code
    uses to discard combinations early (Section 7.2 of the paper).
    """

    vertices: tuple[Coords, ...] = field(default=())

    @classmethod
    def from_rect(cls, rect: Rect) -> "ConvexPolygon":
        """CCW polygon covering a 2-d rectangle."""
        if rect.dim != 2:
            raise GeometryError("only 2-d rectangles convert to polygons")
        (x0, y0), (x1, y1) = rect.low, rect.high
        return cls(((x0, y0), (x1, y0), (x1, y1), (x0, y1)))

    @property
    def is_empty(self) -> bool:
        """True when the polygon has no interior (fewer than 3 vertices)."""
        return len(self.vertices) < 3

    def area(self) -> float:
        """Polygon area via the shoelace formula (0.0 when empty)."""
        if self.is_empty:
            return 0.0
        total = 0.0
        verts = self.vertices
        for i, (x0, y0) in enumerate(verts):
            x1, y1 = verts[(i + 1) % len(verts)]
            total += x0 * y1 - x1 * y0
        return abs(total) / 2.0

    def contains(self, point: Sequence[float]) -> bool:
        """True when ``point`` is inside or on the boundary."""
        if self.is_empty:
            return False
        verts = self.vertices
        for i, (x0, y0) in enumerate(verts):
            x1, y1 = verts[(i + 1) % len(verts)]
            # CCW ring: interior is to the left of each directed edge.
            cross = (x1 - x0) * (point[1] - y0) - (y1 - y0) * (point[0] - x0)
            if cross < -EPS:
                return False
        return True

    def clip(self, halfplane: HalfPlane) -> "ConvexPolygon":
        """Intersect with a half-plane, returning a new polygon.

        Clipping a convex polygon with a half-plane yields a convex polygon
        (possibly empty), so repeated clipping is closed.
        """
        if self.is_empty:
            return self
        out: list[Coords] = []
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            cur = verts[i]
            nxt = verts[(i + 1) % n]
            cur_val = halfplane.value(cur)
            nxt_val = halfplane.value(nxt)
            cur_in = cur_val <= EPS
            nxt_in = nxt_val <= EPS
            if cur_in:
                out.append(cur)
            if cur_in != nxt_in:
                # Edge crosses the boundary; add the intersection point.
                t = cur_val / (cur_val - nxt_val)
                out.append(
                    (
                        cur[0] + t * (nxt[0] - cur[0]),
                        cur[1] + t * (nxt[1] - cur[1]),
                    )
                )
        return ConvexPolygon(_dedupe_ring(out))

    def edge_halfplanes(self) -> list[HalfPlane]:
        """The half-planes whose intersection is this polygon.

        One half-plane per directed CCW edge; the interior lies to the
        left of each edge.
        """
        if self.is_empty:
            raise GeometryError("empty polygon has no edge half-planes")
        planes = []
        verts = self.vertices
        n = len(verts)
        for i, (x0, y0) in enumerate(verts):
            x1, y1 = verts[(i + 1) % n]
            # Left of edge: (x1-x0)(py-y0) - (y1-y0)(px-x0) >= 0
            #   <=>  (y1-y0) px - (x1-x0) py <= (y1-y0) x0 - (x1-x0) y0
            a = y1 - y0
            b = -(x1 - x0)
            planes.append(HalfPlane(a, b, a * x0 + b * y0))
        return planes

    def intersection(self, other: "ConvexPolygon") -> "ConvexPolygon":
        """Intersection of two convex polygons (possibly empty)."""
        if self.is_empty or other.is_empty:
            return ConvexPolygon()
        # Cheap reject: disjoint bounding boxes cannot intersect.
        if not self.bounding_rect().intersects(other.bounding_rect()):
            return ConvexPolygon()
        region = self
        for plane in other.edge_halfplanes():
            region = region.clip(plane)
            if region.is_empty:
                break
        return region

    def bounding_rect(self) -> Rect:
        """Smallest axis-aligned rectangle covering the polygon."""
        if self.is_empty:
            raise GeometryError("empty polygon has no bounding rectangle")
        return Rect.bounding(self.vertices)

    def max_distance_from(self, point: Sequence[float]) -> float:
        """Largest distance from ``point`` to any polygon vertex.

        For a convex polygon the farthest point is always a vertex, so this
        is the exact maximum over the whole polygon.  The incremental
        Voronoi construction uses it as the 'no further clipping possible'
        radius.
        """
        if self.is_empty:
            return 0.0
        return max(dist(point, v) for v in self.vertices)


def _dedupe_ring(points: list[Coords]) -> tuple[Coords, ...]:
    """Drop consecutive (near-)duplicate vertices from a ring."""
    if not points:
        return ()
    kept: list[Coords] = []
    for p in points:
        if kept and abs(p[0] - kept[-1][0]) < EPS and abs(p[1] - kept[-1][1]) < EPS:
            continue
        kept.append(p)
    while (
        len(kept) > 1
        and abs(kept[0][0] - kept[-1][0]) < EPS
        and abs(kept[0][1] - kept[-1][1]) < EPS
    ):
        kept.pop()
    return tuple(kept)
