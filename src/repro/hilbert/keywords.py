"""Keyword bit-vector <-> Hilbert value mapping (Section 4.2).

With one bit per vocabulary term the Hilbert curve over the keyword
hypercube ``{0,1}^w`` degenerates to a Gray-code ordering: consecutive
Hilbert values differ in exactly one keyword, and values ``d`` apart differ
in at most ``d`` keywords.  That is precisely the locality argument of the
paper ("vectors with distance 1 have only one different keyword ... the
maximum number of different keywords is bound by w'").

``KeywordHilbert`` provides a fast O(log w) big-int implementation of that
mapping (prefix-XOR trick) rather than looping the generic curve, plus the
aggregation rule the SRT-index needs: a node's Hilbert value is updated by
decoding to bit vectors, OR-ing, and re-encoding — as described in the
paper's index-construction paragraph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class KeywordHilbert:
    """Gray-code (first-order Hilbert) mapping over ``{0,1}^w``."""

    vocab_size: int

    def __post_init__(self) -> None:
        if self.vocab_size < 1:
            raise GeometryError(
                f"vocabulary size must be >= 1, got {self.vocab_size}"
            )

    @property
    def max_value(self) -> int:
        """Exclusive upper bound of Hilbert values: ``2**w``."""
        return 1 << self.vocab_size

    def encode(self, keyword_mask: int) -> int:
        """Hilbert value (Gray-code rank) of a keyword bit mask.

        This is the inverse of the binary reflected Gray code
        ``g(h) = h ^ (h >> 1)``: bit ``j`` of the result is the XOR of
        mask bits ``j..w-1``, computed with doubling shifts so the cost is
        O(log w) big-int operations.
        """
        self._check(keyword_mask)
        h = keyword_mask
        shift = 1
        while shift < self.vocab_size:
            h ^= h >> shift
            shift <<= 1
        return h

    def decode(self, h: int) -> int:
        """Keyword bit mask at Hilbert value ``h`` (inverse of encode).

        ``decode(h) = h ^ (h >> 1)`` — the binary reflected Gray code, so
        consecutive Hilbert values decode to masks differing in exactly
        one keyword.
        """
        self._check(h)
        return h ^ (h >> 1)

    def aggregate(self, h_a: int, h_b: int) -> int:
        """Hilbert value of the keyword-set union of two Hilbert values.

        This is the node-update rule of the SRT-index: decode both values
        to binary vectors, take the disjunction, re-encode.
        """
        return self.encode(self.decode(h_a) | self.decode(h_b))

    def to_unit(self, h: int) -> float:
        """Normalize a Hilbert value into [0, 1) for use as a coordinate."""
        self._check(h)
        return h / self.max_value

    def _check(self, value: int) -> None:
        if not 0 <= value < self.max_value:
            raise GeometryError(
                f"value {value} out of range [0, 2**{self.vocab_size})"
            )


def gray_rank(keyword_mask: int, vocab_size: int) -> int:
    """Convenience wrapper: Hilbert value of a mask (see KeywordHilbert)."""
    return KeywordHilbert(vocab_size).encode(keyword_mask)
