"""Hilbert-curve machinery: generic n-d curve and keyword mapping."""

from repro.hilbert.curve import HilbertCurve, hilbert_key_2d, hilbert_key_4d
from repro.hilbert.keywords import KeywordHilbert, gray_rank

__all__ = [
    "HilbertCurve",
    "KeywordHilbert",
    "gray_rank",
    "hilbert_key_2d",
    "hilbert_key_4d",
]
