"""n-dimensional Hilbert curve encode/decode (Skilling's algorithm).

Implements the transpose-based algorithm of J. Skilling, *Programming the
Hilbert curve* (AIP Conf. Proc. 707, 2004) for arbitrary dimension count
``n`` and bits-per-dimension ``b``.  Two users in this repo:

* the keyword mapping of Section 4.2 (``b = 1``, ``n = w`` vocabulary
  terms), where the curve degenerates to a Gray-code ordering of the
  keyword hypercube — consecutive Hilbert values differ in exactly one
  keyword, which is the locality property the SRT-index exploits;
* the 4-d bulk-loading key of the SRT-index (``n = 4``, ``b = 16``) over
  the mapped space ``(x, y, score, H(keywords))``.

Values are plain Python ints, so ``n * b`` can exceed machine-word width
(needed for 256-keyword vocabularies → 256-bit Hilbert values).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class HilbertCurve:
    """A Hilbert curve over ``[0, 2**bits)**dims``."""

    dims: int
    bits: int

    def __post_init__(self) -> None:
        if self.dims < 1:
            raise GeometryError(f"need at least 1 dimension, got {self.dims}")
        if self.bits < 1:
            raise GeometryError(f"need at least 1 bit, got {self.bits}")

    @property
    def max_h(self) -> int:
        """Exclusive upper bound of Hilbert values."""
        return 1 << (self.dims * self.bits)

    @property
    def side(self) -> int:
        """Exclusive upper bound of each coordinate."""
        return 1 << self.bits

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def encode(self, coords: Sequence[int]) -> int:
        """Hilbert index of an integer point."""
        x = self._validated(coords)
        m = 1 << (self.bits - 1)

        # Inverse undo of the excess work (Skilling's first loop).
        q = m
        while q > 1:
            p = q - 1
            for i in range(self.dims):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q >>= 1

        # Gray encode.
        for i in range(1, self.dims):
            x[i] ^= x[i - 1]
        t = 0
        q = m
        while q > 1:
            if x[self.dims - 1] & q:
                t ^= q - 1
            q >>= 1
        for i in range(self.dims):
            x[i] ^= t

        return self._interleave(x)

    def decode(self, h: int) -> tuple[int, ...]:
        """Integer point at Hilbert index ``h`` (inverse of :meth:`encode`)."""
        if not 0 <= h < self.max_h:
            raise GeometryError(
                f"hilbert value {h} out of range [0, {self.max_h})"
            )
        x = self._deinterleave(h)
        m = 1 << (self.bits - 1)

        # Gray decode by halving.
        t = x[self.dims - 1] >> 1
        for i in range(self.dims - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t

        # Undo the excess work.
        q = 2
        while q != (m << 1):
            p = q - 1
            for i in range(self.dims - 1, -1, -1):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q <<= 1

        return tuple(x)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _validated(self, coords: Sequence[int]) -> list[int]:
        if len(coords) != self.dims:
            raise GeometryError(
                f"expected {self.dims} coordinates, got {len(coords)}"
            )
        out = []
        for c in coords:
            c = int(c)
            if not 0 <= c < self.side:
                raise GeometryError(
                    f"coordinate {c} out of range [0, {self.side})"
                )
            out.append(c)
        return out

    def _interleave(self, x: Sequence[int]) -> int:
        """Pack the transpose form into a single integer, MSB-first."""
        h = 0
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                h = (h << 1) | ((x[i] >> bit) & 1)
        return h

    def _deinterleave(self, h: int) -> list[int]:
        """Unpack a Hilbert integer into transpose form."""
        x = [0] * self.dims
        position = self.dims * self.bits - 1
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                x[i] |= ((h >> position) & 1) << bit
                position -= 1
        return x


def hilbert_key_2d(x: float, y: float, bits: int = 16) -> int:
    """Hilbert key of a point in the unit square (bulk-load sort key)."""
    return _unit_key(HilbertCurve(2, bits), (x, y))


def hilbert_key_4d(
    x: float, y: float, score: float, text_key: float, bits: int = 8
) -> int:
    """Hilbert key of a mapped SRT point ``(x, y, s, H(W))`` in [0,1]^4."""
    return _unit_key(HilbertCurve(4, bits), (x, y, score, text_key))


def _unit_key(curve: HilbertCurve, unit_coords: Sequence[float]) -> int:
    side = curve.side
    quantized = []
    for c in unit_coords:
        q = int(c * side)
        if q < 0:
            q = 0
        elif q >= side:
            q = side - 1
        quantized.append(q)
    return curve.encode(quantized)
