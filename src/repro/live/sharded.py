"""Live mutations over a sharded engine: routing, re-halo, refreeze.

:class:`LiveShardedDataset` extends the single-node write-through model
(:mod:`repro.live.dataset`) to a
:class:`~repro.shard.ShardedQueryProcessor`:

* **objects** live in exactly one shard — the one whose assignment
  region contains them (:func:`~repro.shard.partitioner.owning_shard_index`,
  same boundary tie-break as the build-time partition);
* **features** live in every shard whose r-halo covers them
  (:func:`~repro.shard.partitioner.halo_shard_indices`); a move that
  changes this replica set deletes the feature from shards it left and
  inserts it into shards it entered — *re-halo* — so the partitioner's
  safety invariant (every shard sees all features within ``r`` of its
  region) survives arbitrary movement.  Re-halos are counted in
  ``repro_live_relocations_total`` and on :attr:`relocations`.

Thread-mode shards mutate in place: their trees sit on ordinary
writable page files and the tree layer already invalidates every cache
write-through.  Process-mode shards sit on *frozen* shared-memory
segments (read-only by protocol), so mutation uses copy-on-write at
shard granularity:

1. **thaw** — on a shard's first mutation its pages are copied out of
   shared memory into a writable in-memory page file and the shard's
   parent-side processor is reopened over it (checksums re-verified
   page by page);
2. **mutate** — any number of further mutations hit the writable copy;
3. **refreeze** — before the next query, :meth:`LiveShardedDataset.flush`
   freezes each dirty shard into *fresh* segments, installs the new
   manifest on the sharded processor, bumps the cache epoch, and unlinks
   the old segments; workers see the new manifest on their next task and
   re-attach (:func:`repro.shard.process_runner._refresh_manifest`).

Amortization is the point: a burst of mutations costs one thaw and one
refreeze per touched shard, not one per mutation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import DatasetError, ShardError
from repro.index.reopen import open_tree
from repro.live.dataset import (
    LiveBase,
    feature_entry,
    live_refreezes_metric,
    live_relocations_metric,
    object_entry,
)
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.obs import tracing as _tracing
from repro.shard.partitioner import halo_shard_indices, owning_shard_index
from repro.shard.process_runner import freeze_shard
from repro.shard.sharded_processor import ShardedQueryProcessor
from repro.storage.pagefile import MemoryPageFile, PageFile
from repro.storage.shm import SharedMemoryPageFile


def _thaw_pagefile(frozen: PageFile) -> MemoryPageFile:
    """Writable in-memory copy of a frozen page file's pages.

    Round-trips every page through ``read``/``write``, so each image's
    CRC is verified as it leaves shared memory.
    """
    mem = MemoryPageFile(frozen.page_size)
    for page_id in range(frozen.page_count):
        mem.allocate()
        mem.write(frozen.read(page_id))
    return mem


class LiveShardedDataset(LiveBase):
    """A :class:`ShardedQueryProcessor` under live mutation.

    Build it like the processor itself::

        live = LiveShardedDataset.build(
            objects, feature_sets, shards=4, radius=0.05
        )
        live.move_feature(0, fid, x, y)   # re-halos across shards
        result = live.query(query)        # == rebuilt-from-scratch

    Restrictions inherited from the partition: with halo replication an
    object insert must land inside some shard's assignment region (the
    halo only covers ``bbox + r``, so an object outside every region
    could see features no shard replicated); full replication accepts
    inserts anywhere.  Queries keep the processor's own shape checks.
    """

    def __init__(
        self,
        processor: ShardedQueryProcessor,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
    ) -> None:
        n_sets = len(processor.shards[0].processor.feature_trees)
        if len(feature_sets) != n_sets:
            raise DatasetError(
                f"{len(feature_sets)} feature sets given, shards have "
                f"{n_sets} feature trees"
            )
        self.processor = processor
        self._init_mirrors(objects, feature_sets)
        #: Feature moves whose shard replica set changed (re-halos).
        self.relocations = 0
        #: Shard refreezes shipped to process-mode workers.
        self.refreezes = 0
        # Shard membership, by *list index* into processor.shards:
        # objects live in exactly one shard, features in their halo set.
        self._object_shard: dict[int, int] = {}
        self._feature_shards: list[dict[int, set[int]]] = [
            {} for _ in feature_sets
        ]
        for i, spec in enumerate(processor.specs):
            for o in spec.objects:
                self._object_shard[o.oid] = i
            for set_id, fs in enumerate(spec.feature_sets):
                for f in fs:
                    self._feature_shards[set_id].setdefault(
                        f.fid, set()
                    ).add(i)
        # Process-mode copy-on-write state: shards thawed but not yet
        # refrozen, and the frozen segments they replaced (closed on
        # flush, once the new manifest is installed).
        self._dirty: set[int] = set()
        self._retired: list[SharedMemoryPageFile] = []

    @classmethod
    def build(
        cls,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
        **kwargs,
    ) -> "LiveShardedDataset":
        """Partition + build + wrap (kwargs → ``ShardedQueryProcessor.build``)."""
        processor = ShardedQueryProcessor.build(
            objects, feature_sets, **kwargs
        )
        return cls(processor, objects, feature_sets)

    # ------------------------------------------------------------------
    # copy-on-write (process mode)
    # ------------------------------------------------------------------
    def _writable_shard(self, idx: int):
        """The shard's processor, thawed if its storage is frozen."""
        shard = self.processor.shards[idx]
        pagefile = shard.processor.object_tree.pagefile
        if not isinstance(pagefile, SharedMemoryPageFile):
            return shard.processor
        with _tracing.span("live.thaw", cat="live", shard=idx):
            trees = []
            for tree in shard.processor.trees():
                frozen = tree.pagefile
                trees.append(
                    open_tree(_thaw_pagefile(frozen), tree.buffer.capacity)
                )
                self._retired.append(frozen)
            from repro.core.processor import QueryProcessor

            shard.processor = QueryProcessor(trees[0], trees[1:])
        self._dirty.add(idx)
        return shard.processor

    def flush(self) -> int:
        """Refreeze dirty shards and publish them to worker processes.

        Returns the number of shards refrozen (0 in thread mode and when
        nothing mutated).  Called automatically by :meth:`query`.
        """
        if not self._dirty:
            return 0
        with self._lock:
            dirty, self._dirty = sorted(self._dirty), set()
            if not dirty:
                return 0
            refrozen = 0
            with _tracing.span("live.refreeze", cat="live", shards=len(dirty)):
                for idx in dirty:
                    shard = self.processor.shards[idx]
                    buffer_pages = shard.processor.object_tree.buffer.capacity
                    frozen_proc, manifest = freeze_shard(
                        shard.spec.geometry(), shard.processor, buffer_pages
                    )
                    shard.processor = frozen_proc
                    self.processor.replace_manifest(idx, manifest)
                    refrozen += 1
            # New segments are live and the manifests point at them:
            # workers re-attach on their next task.  Unlink the old
            # segments (still-mapped workers keep reading their copy
            # until they refresh — POSIX keeps unlinked segments alive
            # while mapped).
            retired, self._retired = self._retired, []
            for segment in retired:
                segment.close()
            self.processor.bump_epoch()
            self.refreezes += refrozen
            live_refreezes_metric().inc(refrozen)
            return refrozen

    # ------------------------------------------------------------------
    # index write hooks
    # ------------------------------------------------------------------
    def _index_insert_object(self, o: DataObject) -> None:
        specs = self.processor.specs
        point = (o.x, o.y)
        idx = owning_shard_index(specs, point)
        if (
            not math.isinf(self.processor.radius)
            and specs[idx].bbox.mindist(point) > 0.0
        ):
            raise ShardError(
                specs[idx].shard_id,
                f"object {o.oid} at {point} lies outside every shard "
                "region; its halo-replicated feature view would be "
                "incomplete — rebuild the partition or use "
                "replication='full'",
            )
        self._writable_shard(idx).object_tree.insert(object_entry(o))
        self._object_shard[o.oid] = idx

    def _index_delete_object(self, o: DataObject) -> None:
        idx = self._object_shard.pop(o.oid)
        tree = self._writable_shard(idx).object_tree
        if not tree.delete(object_entry(o)):
            raise DatasetError(
                f"object {o.oid} mapped to shard {idx} but missing from "
                "its tree — membership/index divergence"
            )

    def _index_insert_feature(self, set_id: int, f: FeatureObject) -> None:
        indices = set(halo_shard_indices(self.processor.specs, (f.x, f.y)))
        entry = feature_entry(f)
        for idx in sorted(indices):
            self._writable_shard(idx).feature_trees[set_id].insert(entry)
        self._feature_shards[set_id][f.fid] = indices

    def _index_delete_feature(self, set_id: int, f: FeatureObject) -> None:
        indices = self._feature_shards[set_id].pop(f.fid)
        entry = feature_entry(f)
        for idx in sorted(indices):
            tree = self._writable_shard(idx).feature_trees[set_id]
            if not tree.delete(entry):
                raise DatasetError(
                    f"feature {f.fid} mapped to shard {idx} but missing "
                    f"from its set-{set_id} tree — membership/index "
                    "divergence"
                )

    def _index_replace_feature(
        self, set_id: int, old: FeatureObject, new: FeatureObject
    ) -> None:
        old_set = self._feature_shards[set_id].pop(old.fid)
        new_set = set(
            halo_shard_indices(self.processor.specs, (new.x, new.y))
        )
        old_entry = feature_entry(old)
        new_entry = feature_entry(new)
        for idx in sorted(old_set):
            tree = self._writable_shard(idx).feature_trees[set_id]
            if not tree.delete(old_entry):
                raise DatasetError(
                    f"feature {old.fid} mapped to shard {idx} but missing "
                    f"from its set-{set_id} tree — membership/index "
                    "divergence"
                )
        for idx in sorted(new_set):
            self._writable_shard(idx).feature_trees[set_id].insert(new_entry)
        self._feature_shards[set_id][new.fid] = new_set
        if new_set != old_set:
            self.relocations += 1
            live_relocations_metric().inc()

    # ------------------------------------------------------------------
    # query passthrough
    # ------------------------------------------------------------------
    def query(self, query, **kwargs):
        """Flush pending refreezes, then fan the query out (see processor)."""
        self.flush()
        return self.processor.query(query, **kwargs)

    def explain(self, query, **kwargs):
        self.flush()
        return self.processor.explain(query, **kwargs)

    def clear_buffers(self) -> dict[str, int]:
        return self.processor.clear_buffers()

    def close(self) -> None:
        """Close the processor and any segments retired but not flushed."""
        retired, self._retired = self._retired, []
        for segment in retired:
            segment.close()
        self.processor.close()

    def __enter__(self) -> "LiveShardedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # self-checks
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Validate every shard tree and the membership bookkeeping."""
        per_shard_objects = [0] * len(self.processor.shards)
        for idx in self._object_shard.values():
            per_shard_objects[idx] += 1
        per_shard_features = [
            [0] * len(self._features) for _ in self.processor.shards
        ]
        for set_id, members in enumerate(self._feature_shards):
            for indices in members.values():
                for idx in indices:
                    per_shard_features[idx][set_id] += 1
        if len(self._object_shard) != len(self._objects):
            raise DatasetError(
                f"{len(self._object_shard)} objects routed, mirror has "
                f"{len(self._objects)}"
            )
        for set_id, members in enumerate(self._feature_shards):
            if members.keys() != self._features[set_id].keys():
                raise DatasetError(
                    f"feature set {set_id}: routed ids differ from mirror"
                )
        for idx, shard in enumerate(self.processor.shards):
            tree = shard.processor.object_tree
            tree.validate()
            if tree.count != per_shard_objects[idx]:
                raise DatasetError(
                    f"shard {idx} object tree holds {tree.count} entries, "
                    f"membership says {per_shard_objects[idx]}"
                )
            for set_id, ftree in enumerate(shard.processor.feature_trees):
                ftree.validate()
                if ftree.count != per_shard_features[idx][set_id]:
                    raise DatasetError(
                        f"shard {idx} set-{set_id} tree holds "
                        f"{ftree.count} entries, membership says "
                        f"{per_shard_features[idx][set_id]}"
                    )
