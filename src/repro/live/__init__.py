"""Live index updates: mutate a built engine, keep answers exact.

:class:`LiveDataset` wraps a single-node
:class:`~repro.core.processor.QueryProcessor`, :class:`LiveShardedDataset`
a :class:`~repro.shard.ShardedQueryProcessor`; both expose the same
mutation API (``insert/delete/move/rescore`` for features,
``insert/delete`` for objects) with write-through aggregate maintenance
and cache invalidation, so queries after any mutation sequence return
exactly what a rebuilt-from-scratch index would (the
incremental-vs-rebuild differential oracle in ``tests/live`` enforces
this at 1e-9).  :class:`~repro.core.streaming.TopKMonitor` turns either
into a continuous top-k over a mutation stream.
"""

from repro.live.dataset import (
    LIVE_METRIC_FAMILIES,
    MUTATION_OPS,
    LiveBase,
    LiveDataset,
    Mutation,
    feature_entry,
    object_entry,
)
from repro.live.sharded import LiveShardedDataset

__all__ = [
    "LIVE_METRIC_FAMILIES",
    "MUTATION_OPS",
    "LiveBase",
    "LiveDataset",
    "LiveShardedDataset",
    "Mutation",
    "feature_entry",
    "object_entry",
]
