"""Live (mutable) datasets layered over built indexes.

The indexes were build-once until this module: :class:`LiveDataset`
turns a built :class:`~repro.core.processor.QueryProcessor` into a
mutable world with a small, safe mutation API —

* ``insert_feature`` / ``delete_feature`` / ``move_feature`` /
  ``rescore_feature`` for feature objects,
* ``insert_object`` / ``delete_object`` for data objects.

Every mutation writes through the underlying R-trees
(:meth:`~repro.index.rtree_base.RTreeBase.insert` /
:meth:`~repro.index.rtree_base.RTreeBase.delete`), which recompute the
paper's per-node aggregates ``(e.s, e.W)`` bottom-up along the mutation
path and invalidate the decoded-node cache, the page buffer entry, and
the per-leaf score memo for every rewritten page
(``RTreeBase.write_node`` → ``Node.invalidate_arrays``).  Lemma 1's
pruning bound ``ŝ(e)`` therefore stays *exact* — never stale-tight —
after any mutation sequence; ``tests/live`` proves this with an
incremental-vs-rebuilt differential oracle and a stateful model checker.

Mutations also maintain an id-keyed mirror of the datasets, so a
brute-force shadow or a rebuilt-from-scratch index is always one
:meth:`~LiveBase.objects_snapshot` / :meth:`~LiveBase.feature_snapshots`
call away.

Concurrency model: one writer.  Mutations take an internal lock against
each other, but a mutation concurrent with a query may expose the query
to a half-updated tree — serialize externally (e.g. behind the
executor) when mixing.
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.processor import QueryProcessor
from repro.errors import DatasetError
from repro.index.nodes import FeatureLeafEntry, ObjectLeafEntry
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

#: Mutation kinds accepted by :meth:`LiveBase.apply`.
MUTATION_OPS = (
    "insert_feature",
    "delete_feature",
    "move_feature",
    "rescore_feature",
    "insert_object",
    "delete_object",
)

#: Metric families owned by the live-update layer (reset scope).
LIVE_METRIC_FAMILIES = (
    "repro_live_mutations_total",
    "repro_live_relocations_total",
    "repro_live_refreezes_total",
)


def live_mutations_metric() -> "_metrics.MetricFamily":
    """Mutations applied, by target (``object``/``feature``) and op.

    Lazily resolved against the current default registry (see
    :func:`repro.shard.sharded_processor.shard_queries_metric` for the
    rationale): test-scoped registries must see live-update counters.
    """
    return _metrics.registry().counter(
        "repro_live_mutations_total",
        "Live-dataset mutations applied.",
        ("target", "op"),
    )


def live_relocations_metric() -> "_metrics.MetricFamily":
    """Features whose shard replica set changed on a move (re-halo)."""
    return _metrics.registry().counter(
        "repro_live_relocations_total",
        "Feature moves that re-replicated across shard halos.",
        (),
    )


def live_refreezes_metric() -> "_metrics.MetricFamily":
    """Shard refreezes shipped to process-mode workers."""
    return _metrics.registry().counter(
        "repro_live_refreezes_total",
        "Mutated shards refrozen into fresh shared-memory segments.",
        (),
    )


@dataclass(frozen=True, slots=True)
class Mutation:
    """One declarative mutation event (the feature-stream record).

    ``op`` is one of :data:`MUTATION_OPS`; the remaining fields are
    op-specific (``feature``/``set_id`` for feature inserts, ``fid`` for
    feature deletes, ``fid``/``x``/``y`` for moves, ``fid``/``score``
    for rescores, ``obj`` for object inserts, ``oid`` for object
    deletes).  :meth:`LiveBase.apply` dispatches it.
    """

    op: str
    set_id: int = 0
    feature: FeatureObject | None = None
    obj: DataObject | None = None
    fid: int | None = None
    oid: int | None = None
    x: float | None = None
    y: float | None = None
    score: float | None = None


def feature_entry(feature: FeatureObject) -> FeatureLeafEntry:
    """The exact leaf entry a feature occupies in a feature tree."""
    return FeatureLeafEntry(
        feature.fid, feature.x, feature.y, feature.score,
        feature.keyword_mask(),
    )


def object_entry(obj: DataObject) -> ObjectLeafEntry:
    """The exact leaf entry a data object occupies in the object tree."""
    return ObjectLeafEntry(obj.oid, obj.x, obj.y)


class LiveBase:
    """Shared mirror bookkeeping + mutation dispatch for live datasets.

    Subclasses implement the ``_index_*`` hooks, which write the actual
    trees; this base owns validation, the dataset mirrors, the mutation
    counter metrics, and snapshot construction.
    """

    def _init_mirrors(
        self,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
    ) -> None:
        self._lock = threading.RLock()
        self._objects: dict[int, DataObject] = {o.oid: o for o in objects}
        self._features: list[dict[int, FeatureObject]] = [
            {f.fid: f for f in fs} for fs in feature_sets
        ]
        self._vocabularies = [fs.vocabulary for fs in feature_sets]
        self._labels = [fs.label for fs in feature_sets]
        #: Monotone mutation counter; bumped once per applied mutation.
        self.version = 0
        self._mutation_listeners: list = []

    # ------------------------------------------------------------------
    # index write hooks (subclass responsibility)
    # ------------------------------------------------------------------
    def _index_insert_feature(self, set_id: int, f: FeatureObject) -> None:
        raise NotImplementedError

    def _index_delete_feature(self, set_id: int, f: FeatureObject) -> None:
        raise NotImplementedError

    def _index_replace_feature(
        self, set_id: int, old: FeatureObject, new: FeatureObject
    ) -> None:
        """Default move/rescore: delete the old entry, insert the new."""
        self._index_delete_feature(set_id, old)
        self._index_insert_feature(set_id, new)

    def _index_insert_object(self, o: DataObject) -> None:
        raise NotImplementedError

    def _index_delete_object(self, o: DataObject) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_set(self, set_id: int) -> None:
        if not 0 <= set_id < len(self._features):
            raise DatasetError(
                f"feature set {set_id} out of range "
                f"(have {len(self._features)} sets)"
            )

    def _check_new_feature(self, set_id: int, f: FeatureObject) -> None:
        if f.fid in self._features[set_id]:
            raise DatasetError(
                f"feature id {f.fid} already present in set {set_id}"
            )
        size = self._vocabularies[set_id].size
        bad = [k for k in f.keywords if k >= size]
        if bad:
            raise DatasetError(
                f"feature {f.fid} uses term ids {bad} outside the "
                f"{size}-term vocabulary"
            )

    def _existing_feature(self, set_id: int, fid: int) -> FeatureObject:
        try:
            return self._features[set_id][fid]
        except KeyError:
            raise DatasetError(
                f"unknown feature id {fid} in set {set_id}"
            ) from None

    # ------------------------------------------------------------------
    # mutation API
    # ------------------------------------------------------------------
    def insert_feature(self, set_id: int, feature: FeatureObject) -> None:
        """Add a new feature object to set ``set_id``."""
        with self._lock, _tracing.span(
            "live.mutate", cat="live", op="insert_feature", set_id=set_id
        ):
            self._check_set(set_id)
            self._check_new_feature(set_id, feature)
            self._index_insert_feature(set_id, feature)
            self._features[set_id][feature.fid] = feature
            self._bump("feature", "insert")

    def delete_feature(self, set_id: int, fid: int) -> FeatureObject:
        """Remove a feature by id; returns the removed object."""
        with self._lock, _tracing.span(
            "live.mutate", cat="live", op="delete_feature", set_id=set_id
        ):
            self._check_set(set_id)
            old = self._existing_feature(set_id, fid)
            self._index_delete_feature(set_id, old)
            del self._features[set_id][fid]
            self._bump("feature", "delete")
            return old

    def move_feature(
        self, set_id: int, fid: int, x: float, y: float
    ) -> FeatureObject:
        """Relocate a feature; returns the updated object."""
        with self._lock, _tracing.span(
            "live.mutate", cat="live", op="move_feature", set_id=set_id
        ):
            self._check_set(set_id)
            old = self._existing_feature(set_id, fid)
            new = dataclasses.replace(old, x=x, y=y)
            self._index_replace_feature(set_id, old, new)
            self._features[set_id][fid] = new
            self._bump("feature", "move")
            return new

    def rescore_feature(
        self, set_id: int, fid: int, score: float
    ) -> FeatureObject:
        """Change a feature's quality score; returns the updated object."""
        with self._lock, _tracing.span(
            "live.mutate", cat="live", op="rescore_feature", set_id=set_id
        ):
            self._check_set(set_id)
            old = self._existing_feature(set_id, fid)
            new = dataclasses.replace(old, score=score)
            self._index_replace_feature(set_id, old, new)
            self._features[set_id][fid] = new
            self._bump("feature", "rescore")
            return new

    def insert_object(self, obj: DataObject) -> None:
        """Add a new data object."""
        with self._lock, _tracing.span(
            "live.mutate", cat="live", op="insert_object"
        ):
            if obj.oid in self._objects:
                raise DatasetError(f"object id {obj.oid} already present")
            self._index_insert_object(obj)
            self._objects[obj.oid] = obj
            self._bump("object", "insert")

    def delete_object(self, oid: int) -> DataObject:
        """Remove a data object by id; returns the removed object."""
        with self._lock, _tracing.span(
            "live.mutate", cat="live", op="delete_object"
        ):
            try:
                old = self._objects[oid]
            except KeyError:
                raise DatasetError(f"unknown data object id {oid}") from None
            self._index_delete_object(old)
            del self._objects[oid]
            self._bump("object", "delete")
            return old

    def apply(self, mutation: Mutation) -> None:
        """Dispatch one declarative :class:`Mutation` event."""
        op = mutation.op
        if op == "insert_feature":
            self.insert_feature(mutation.set_id, mutation.feature)
        elif op == "delete_feature":
            self.delete_feature(mutation.set_id, mutation.fid)
        elif op == "move_feature":
            self.move_feature(
                mutation.set_id, mutation.fid, mutation.x, mutation.y
            )
        elif op == "rescore_feature":
            self.rescore_feature(mutation.set_id, mutation.fid, mutation.score)
        elif op == "insert_object":
            self.insert_object(mutation.obj)
        elif op == "delete_object":
            self.delete_object(mutation.oid)
        else:
            raise DatasetError(
                f"unknown mutation op {op!r}; choose from {MUTATION_OPS}"
            )

    def add_mutation_listener(self, fn) -> None:
        """Register ``fn(target, op)``, called after every applied mutation.

        Listeners run under the mutation lock, *after* the index write
        and mirror update committed — a listener that invalidates a
        derived structure (e.g. the serving layer's result cache, see
        :mod:`repro.serve.cache`) therefore never observes a
        half-applied world.  Keep listeners cheap: they sit on the
        mutation path.
        """
        with self._lock:
            self._mutation_listeners.append(fn)

    def remove_mutation_listener(self, fn) -> None:
        """Unregister a listener previously added (missing ones are a no-op)."""
        with self._lock:
            try:
                self._mutation_listeners.remove(fn)
            except ValueError:
                pass

    def _bump(self, target: str, op: str) -> None:
        self.version += 1
        live_mutations_metric().labels(target=target, op=op).inc()
        for fn in tuple(self._mutation_listeners):
            fn(target, op)

    # ------------------------------------------------------------------
    # snapshots (rebuild / brute-force oracle input)
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self._objects)

    def n_features(self, set_id: int) -> int:
        self._check_set(set_id)
        return len(self._features[set_id])

    def object_ids(self) -> list[int]:
        """Current data-object ids, ascending."""
        with self._lock:
            return sorted(self._objects)

    def feature_ids(self, set_id: int) -> list[int]:
        """Current feature ids of one set, ascending."""
        self._check_set(set_id)
        with self._lock:
            return sorted(self._features[set_id])

    def get_object(self, oid: int) -> DataObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise DatasetError(f"unknown data object id {oid}") from None

    def get_feature(self, set_id: int, fid: int) -> FeatureObject:
        self._check_set(set_id)
        return self._existing_feature(set_id, fid)

    def objects_snapshot(self) -> ObjectDataset:
        """Current data objects as an immutable-by-convention dataset."""
        with self._lock:
            members = [self._objects[oid] for oid in sorted(self._objects)]
        return ObjectDataset(members)

    def feature_snapshots(self) -> list[FeatureDataset]:
        """Current feature sets (sorted by id, original vocabularies)."""
        with self._lock:
            return [
                FeatureDataset(
                    [mirror[fid] for fid in sorted(mirror)],
                    self._vocabularies[i],
                    self._labels[i],
                )
                for i, mirror in enumerate(self._features)
            ]


class LiveDataset(LiveBase):
    """A single-node :class:`QueryProcessor` under live mutation.

    Build it from raw datasets::

        live = LiveDataset.build(objects, feature_sets)
        live.insert_feature(0, FeatureObject(97, 0.2, 0.3, 0.9, {1, 4}))
        live.move_feature(0, 97, 0.7, 0.7)
        result = live.query(query)        # sees the mutations

    ``live.processor`` is an ordinary processor over the same trees, so
    every algorithm, the executor, EXPLAIN, and the observability stack
    work unchanged on a mutated index.
    """

    def __init__(
        self,
        processor: QueryProcessor,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
    ) -> None:
        if len(feature_sets) != len(processor.feature_trees):
            raise DatasetError(
                f"{len(feature_sets)} feature sets given, processor has "
                f"{len(processor.feature_trees)} feature trees"
            )
        self.processor = processor
        self._init_mirrors(objects, feature_sets)

    @classmethod
    def build(
        cls,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
        **kwargs,
    ) -> "LiveDataset":
        """Build the indexes and wrap them (kwargs → ``QueryProcessor.build``)."""
        processor = QueryProcessor.build(objects, feature_sets, **kwargs)
        return cls(processor, objects, feature_sets)

    # ------------------------------------------------------------------
    # index write hooks
    # ------------------------------------------------------------------
    def _index_insert_feature(self, set_id: int, f: FeatureObject) -> None:
        self.processor.feature_trees[set_id].insert(feature_entry(f))

    def _index_delete_feature(self, set_id: int, f: FeatureObject) -> None:
        if not self.processor.feature_trees[set_id].delete(feature_entry(f)):
            raise DatasetError(
                f"feature {f.fid} present in the mirror but missing from "
                f"index {set_id} — index/mirror divergence"
            )

    def _index_insert_object(self, o: DataObject) -> None:
        self.processor.object_tree.insert(object_entry(o))

    def _index_delete_object(self, o: DataObject) -> None:
        if not self.processor.object_tree.delete(object_entry(o)):
            raise DatasetError(
                f"object {o.oid} present in the mirror but missing from "
                "the object tree — index/mirror divergence"
            )

    # ------------------------------------------------------------------
    # query passthrough
    # ------------------------------------------------------------------
    def query(self, query, **kwargs):
        """Execute a query against the live indexes (see QueryProcessor)."""
        return self.processor.query(query, **kwargs)

    def explain(self, query, **kwargs):
        return self.processor.explain(query, **kwargs)

    def clear_buffers(self) -> dict[str, int]:
        return self.processor.clear_buffers()

    # ------------------------------------------------------------------
    # self-checks
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Validate every tree and the index↔mirror counts.

        Raises :class:`~repro.errors.IndexError_` on a structural or
        aggregate violation, :class:`DatasetError` on a count mismatch.
        ``validate()`` recomputes each internal entry from its child, so
        a stale ``max_score``/summary after any mutation fails here.
        """
        tree = self.processor.object_tree
        tree.validate()
        if tree.count != len(self._objects):
            raise DatasetError(
                f"object tree holds {tree.count} entries, mirror has "
                f"{len(self._objects)}"
            )
        for i, ftree in enumerate(self.processor.feature_trees):
            ftree.validate()
            if ftree.count != len(self._features[i]):
                raise DatasetError(
                    f"feature tree {i} holds {ftree.count} entries, "
                    f"mirror has {len(self._features[i])}"
                )
