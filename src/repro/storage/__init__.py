"""Paged storage substrate: pages, page files, buffer pool, I/O stats."""

from repro.storage.buffer import DEFAULT_BUFFER_PAGES, BufferPool
from repro.storage.node_cache import NodeCache
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.pagefile import DiskPageFile, MemoryPageFile, PageFile
from repro.storage.shm import SharedMemoryPageFile
from repro.storage.stats import DEFAULT_PAGE_READ_COST_S, IOStats

__all__ = [
    "DEFAULT_BUFFER_PAGES",
    "DEFAULT_PAGE_READ_COST_S",
    "DEFAULT_PAGE_SIZE",
    "BufferPool",
    "DiskPageFile",
    "IOStats",
    "MemoryPageFile",
    "NodeCache",
    "Page",
    "PageFile",
    "SharedMemoryPageFile",
]
