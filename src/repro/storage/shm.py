"""Shared-memory page file: zero-copy page images across processes.

A :class:`SharedMemoryPageFile` keeps a *frozen* set of encoded page
images in one ``multiprocessing.shared_memory`` block with a fixed-slot
layout, so worker processes attach to an index's storage by name —
no pickling, no per-page copies, no rebuild:

::

    +--------- header (64 bytes) ---------+------ slot 0 ------+-- ...
    | magic | version | page_size | count |  page 0 image      | page 1
    +-------------------------------------+--------------------+-- ...

Slot ``i`` starts at ``HEADER_BYTES + i * page_size`` and holds exactly
the bytes :meth:`repro.storage.page.Page.encode` produces — length
prefix, CRC32, payload, zero padding — so every cross-process read
re-verifies the per-page checksum on decode, exactly like the disk and
memory page files.

The file is **read-only by protocol**: it is created by freezing an
already-built index (:meth:`SharedMemoryPageFile.freeze`) and attached
read-only by workers (:meth:`SharedMemoryPageFile.attach`);
``allocate``/``write`` raise.  POSIX shared memory has no hardware
read-only mapping through this API, so immutability is enforced at the
page-file layer and guarded by the checksums underneath.

Lifecycle: exactly one owner (the freezing process) unlinks the segment
on :meth:`close`; attaching processes merely unmap.  Python >= 3.8's
``resource_tracker`` would otherwise *unlink the owner's segment* when
an attaching process exits, so :meth:`attach` suppresses tracker
registration for the attaching process — the documented workaround
until ``track=False`` (3.13) is available everywhere.
"""

from __future__ import annotations

import contextlib
import struct
import threading
from multiprocessing import resource_tracker, shared_memory

from repro.errors import PageNotFoundError, StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.pagefile import MemoryPageFile, PageFile

#: Identifies (and versions) the header layout; bump on layout changes.
MAGIC = b"RPRSHM01"

#: magic(8s) + page_size(u32) + page_count(u32), zero-padded to 64 bytes
#: so slot 0 starts cache-line aligned.
_HEADER = struct.Struct("<8sII")
HEADER_BYTES = 64


_attach_lock = threading.Lock()

#: Live mappings held by this process, keyed per page-file instance
#: (the same segment may be mapped twice in one process — owner plus an
#: in-process attacher): id -> (name, bytes, is_owner).  Maintained by
#: ``SharedMemoryPageFile.__init__``/``close`` so the resource sampler
#: (:mod:`repro.obs.resources`) can report how much of ``/dev/shm`` this
#: process holds (owner) or maps (attacher) without walking the
#: filesystem.
_live_segments: dict[int, tuple[str, int, bool]] = {}
_live_lock = threading.Lock()


def live_segments() -> list[tuple[str, int, bool]]:
    """Snapshot of live mappings: ``(name, bytes, is_owner)`` per mapping."""
    with _live_lock:
        return list(_live_segments.values())


def live_bytes(owned_only: bool = False) -> int:
    """Total bytes of mapped segments (optionally only owned ones)."""
    with _live_lock:
        return sum(
            size for _, size, owner in _live_segments.values()
            if owner or not owned_only
        )


@contextlib.contextmanager
def _untracked_attach():
    """Swap ``resource_tracker.register`` out while attaching a segment.

    ``SharedMemory.__init__`` registers the name with the tracker even
    for a plain attach (3.8–3.12), which makes the tracker unlink the
    segment when the attaching process exits.  The lock serializes the
    swap so concurrent *owning* creations in other threads still
    register normally.
    """
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            yield
        finally:
            resource_tracker.register = original


class SharedMemoryPageFile(PageFile):
    """Read-only page store over one shared-memory block (see module doc)."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        page_size: int,
        page_count: int,
        owner: bool,
    ) -> None:
        super().__init__(page_size)
        self._shm = shm
        self._page_count = page_count
        self._owner = owner
        self._closed = False
        with _live_lock:
            _live_segments[id(self)] = (shm.name, shm.size, owner)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(
        cls, source: PageFile, name: str | None = None
    ) -> "SharedMemoryPageFile":
        """Copy every page image of ``source`` into a new shared block.

        The caller becomes the segment's owner (``close`` unlinks).  The
        source is left untouched; freshly allocated but never-written
        pages are frozen as empty (structurally valid) page images.
        """
        page_size = source.page_size
        page_count = source.page_count
        size = HEADER_BYTES + page_count * page_size
        shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        try:
            shm.buf[:HEADER_BYTES] = _HEADER.pack(
                MAGIC, page_size, page_count
            ).ljust(HEADER_BYTES, b"\x00")
            for page_id in range(page_count):
                raw = _raw_page_image(source, page_id)
                off = HEADER_BYTES + page_id * page_size
                shm.buf[off : off + page_size] = raw
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, page_size, page_count, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedMemoryPageFile":
        """Attach to an existing segment by name (non-owning)."""
        # The attaching process's resource tracker must not adopt the
        # segment: it would unlink it (destroying the owner's data) when
        # *this* process exits.  Suppress registration rather than
        # unregistering afterwards — fork-mode children share the
        # parent's tracker process, so an unregister message from a
        # child would silently drop the OWNER's registration (and the
        # tracker then warns on the owner's own unlink).  See module
        # docstring; ``track=False`` (3.13) replaces this eventually.
        with _untracked_attach():
            shm = shared_memory.SharedMemory(name=name)
        try:
            magic, page_size, page_count = _HEADER.unpack_from(shm.buf, 0)
            if magic != MAGIC:
                raise StorageError(
                    f"shared segment {name!r} is not a page file "
                    f"(magic {magic!r})"
                )
            expected = HEADER_BYTES + page_count * page_size
            if shm.size < expected:
                raise StorageError(
                    f"shared segment {name!r} truncated: header claims "
                    f"{expected} bytes, segment has {shm.size}"
                )
        except BaseException:
            shm.close()
            raise
        return cls(shm, page_size, page_count, owner=False)

    # ------------------------------------------------------------------
    # PageFile interface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name other processes attach by."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        return self._owner

    def allocate(self) -> int:
        raise StorageError("shared-memory page file is read-only (frozen)")

    def write(self, page: Page) -> None:
        raise StorageError("shared-memory page file is read-only (frozen)")

    def read(self, page_id: int) -> Page:
        if self._closed:
            raise StorageError("shared-memory page file is closed")
        if not 0 <= page_id < self._page_count:
            raise PageNotFoundError(page_id)
        self.stats.record_read()
        off = HEADER_BYTES + page_id * self.page_size
        raw = bytes(self._shm.buf[off : off + self.page_size])
        return Page.decode(page_id, raw, self.page_size)

    @property
    def page_count(self) -> int:
        return self._page_count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap; the owner also unlinks the segment from the system."""
        if self._closed:
            return
        self._closed = True
        with _live_lock:
            _live_segments.pop(id(self), None)
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass

    def __enter__(self) -> "SharedMemoryPageFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # safety net; close() is the real API
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __reduce__(self):
        raise StorageError(
            "SharedMemoryPageFile does not pickle; transfer the segment "
            "name and attach() in the target process"
        )


def _raw_page_image(source: PageFile, page_id: int) -> bytes:
    """The encoded on-storage image of one page of ``source``."""
    if isinstance(source, MemoryPageFile):
        # Fast path: grab the stored image without touching read stats.
        raw = source._pages.get(page_id)
        if raw is None:
            raise PageNotFoundError(page_id)
        if not raw:  # allocated but never written
            return Page(page_id, b"").encode(source.page_size)
        return raw
    return source.read(page_id).encode(source.page_size)
