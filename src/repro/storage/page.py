"""Fixed-size pages with checksummed payloads.

A page is the unit of I/O for every index in the repo.  On-disk layout::

    [4 bytes payload length][4 bytes CRC32 of payload][payload][zero padding]

The 8-byte header plus payload must fit ``page_size`` bytes; oversized
payloads raise :class:`PageOverflowError`, which the R-tree layer uses to
derive node fan-out from the page size (the paper notes node capacity drops
as the keyword bitmap grows — Section 8.2, Figure 7(d) discussion).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import PageCorruptedError, PageOverflowError

DEFAULT_PAGE_SIZE = 4096
_HEADER = struct.Struct("<II")
HEADER_SIZE = _HEADER.size


@dataclass(frozen=True, slots=True)
class Page:
    """An immutable page: id plus raw payload bytes."""

    page_id: int
    payload: bytes

    def encode(self, page_size: int = DEFAULT_PAGE_SIZE) -> bytes:
        """Serialize to exactly ``page_size`` bytes (header + padding)."""
        needed = HEADER_SIZE + len(self.payload)
        if needed > page_size:
            raise PageOverflowError(needed, page_size)
        header = _HEADER.pack(len(self.payload), zlib.crc32(self.payload))
        return header + self.payload + b"\x00" * (page_size - needed)

    @classmethod
    def decode(
        cls, page_id: int, raw: bytes, page_size: int = DEFAULT_PAGE_SIZE
    ) -> "Page":
        """Parse a raw page image, validating length and checksum."""
        if len(raw) != page_size:
            raise PageCorruptedError(
                page_id, f"expected {page_size} bytes, got {len(raw)}"
            )
        length, checksum = _HEADER.unpack_from(raw)
        if HEADER_SIZE + length > page_size:
            raise PageCorruptedError(page_id, "payload length exceeds page size")
        payload = raw[HEADER_SIZE : HEADER_SIZE + length]
        if zlib.crc32(payload) != checksum:
            raise PageCorruptedError(page_id, "checksum mismatch")
        return cls(page_id, payload)

    @staticmethod
    def capacity(page_size: int = DEFAULT_PAGE_SIZE) -> int:
        """Maximum payload bytes that fit in a page of ``page_size``."""
        return page_size - HEADER_SIZE
