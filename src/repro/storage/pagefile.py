"""Page files: allocation, read and write of fixed-size pages.

Two implementations share one interface:

* :class:`MemoryPageFile` — keeps encoded page images in RAM but still
  charges every read/write to :class:`~repro.storage.stats.IOStats`.  This
  is what the benchmarks use: it models the paper's disk-resident indexes
  deterministically without real-disk noise.
* :class:`DiskPageFile` — the same layout persisted to an actual file, so
  indexes survive process restarts and the storage format is real.

Both encode/decode through :class:`~repro.storage.page.Page`, so checksums
are verified on every read path.
"""

from __future__ import annotations

import mmap
import os
import threading
from abc import ABC, abstractmethod

from repro.errors import PageNotFoundError, StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE, Page
from repro.storage.stats import IOStats


class PageFile(ABC):
    """Abstract store of fixed-size pages with I/O accounting."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 64:
            raise StorageError(f"page size {page_size} is too small")
        self.page_size = page_size
        self.stats = IOStats()

    @abstractmethod
    def allocate(self) -> int:
        """Reserve a new page id."""

    @abstractmethod
    def read(self, page_id: int) -> Page:
        """Fetch a page (counts one physical read)."""

    @abstractmethod
    def write(self, page: Page) -> None:
        """Persist a page image (counts one physical write)."""

    @property
    @abstractmethod
    def page_count(self) -> int:
        """Number of allocated pages."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""


class MemoryPageFile(PageFile):
    """In-memory page store that still encodes/decodes page images."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: dict[int, bytes] = {}
        self._next_id = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = b""
        return page_id

    def read(self, page_id: int) -> Page:
        raw = self._pages.get(page_id)
        if raw is None:
            raise PageNotFoundError(page_id)
        self.stats.record_read()
        return Page.decode(page_id, raw, self.page_size)

    def write(self, page: Page) -> None:
        if page.page_id not in self._pages:
            raise PageNotFoundError(page.page_id)
        self.stats.record_write()
        self._pages[page.page_id] = page.encode(self.page_size)

    @property
    def page_count(self) -> int:
        return self._next_id

    def corrupt(self, page_id: int, offset: int = 16) -> None:
        """Flip one payload byte of a stored page (test/fault injection)."""
        raw = self._pages.get(page_id)
        if raw is None:
            raise PageNotFoundError(page_id)
        if offset >= len(raw):
            raise StorageError(f"offset {offset} beyond page size")
        mutated = bytearray(raw)
        mutated[offset] ^= 0xFF
        self._pages[page_id] = bytes(mutated)


class DiskPageFile(PageFile):
    """Page store backed by a real file of back-to-back page images.

    One file descriptor is opened at construction and reused for the
    whole lifetime; reads go through positioned ``os.pread`` (no shared
    seek cursor, so concurrent readers never race) or, with
    ``mmap_reads=True``, through a shared read-only memory map that is
    grown lazily as the file is extended.  Writes use positioned
    ``os.pwrite`` under a lock that also guards allocation.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        mmap_reads: bool = False,
    ) -> None:
        super().__init__(page_size)
        self.path = path
        exists = os.path.exists(path)
        self._fh = open(path, "r+b" if exists else "w+b", buffering=0)
        self._fd = self._fh.fileno()
        self._write_lock = threading.Lock()
        self._mmap_reads = mmap_reads
        self._mmap: mmap.mmap | None = None
        if exists:
            size = os.fstat(self._fd).st_size
            if size % page_size:
                self._fh.close()
                raise StorageError(
                    f"{path}: size {size} is not a multiple of page size {page_size}"
                )
            self._next_id = size // page_size
        else:
            self._next_id = 0

    def allocate(self) -> int:
        with self._write_lock:
            page_id = self._next_id
            self._next_id += 1
            # Extend the file with an empty (valid) page image so reads of
            # a freshly allocated page do not fail structurally.
            os.pwrite(
                self._fd,
                Page(page_id, b"").encode(self.page_size),
                page_id * self.page_size,
            )
        return page_id

    def read(self, page_id: int) -> Page:
        if not 0 <= page_id < self._next_id:
            raise PageNotFoundError(page_id)
        self.stats.record_read()
        offset = page_id * self.page_size
        if self._mmap_reads:
            view = self._view(offset + self.page_size)
            raw = bytes(view[offset : offset + self.page_size])
        else:
            raw = os.pread(self._fd, self.page_size, offset)
        return Page.decode(page_id, raw, self.page_size)

    def write(self, page: Page) -> None:
        if not 0 <= page.page_id < self._next_id:
            raise PageNotFoundError(page.page_id)
        self.stats.record_write()
        with self._write_lock:
            os.pwrite(
                self._fd,
                page.encode(self.page_size),
                page.page_id * self.page_size,
            )

    def _view(self, upto: int) -> mmap.mmap:
        """The shared read map, re-mapped when the file has grown past it.

        A ``MAP_SHARED`` mapping is coherent with ``pwrite`` through the
        page cache, so only growth forces a remap.
        """
        view = self._mmap
        if view is None or len(view) < upto:
            if view is not None:
                view.close()
            view = self._mmap = mmap.mmap(
                self._fd, 0, access=mmap.ACCESS_READ
            )
        return view

    @property
    def page_count(self) -> int:
        return self._next_id

    def flush(self) -> None:
        """Push written pages to stable storage."""
        os.fsync(self._fd)

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._fh.close()

    def __enter__(self) -> "DiskPageFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
