"""Decoded-node LRU cache — the layer above the page buffer.

The storage hierarchy seen by an index is::

    pagefile (simulated disk)  ->  BufferPool (raw pages)  ->  NodeCache

Decoding a page into entry objects costs far more CPU than the buffer
lookup itself (``struct`` unpacking plus one Python object per entry), so
hot nodes are kept in *object* form here and the codec runs only on cache
misses.  The cache is keyed by page id and must be explicitly invalidated
whenever a page is rewritten (``RTreeBase.write_node`` does this and then
re-caches the fresh node object, so readers never observe a stale decode).

Hits and misses are recorded on the owning page file's :class:`IOStats`
(as ``node_cache_hits`` / ``node_cache_misses``) so per-query accounting
can surface them; a hit additionally counts as a buffer hit because it
serves one logical read without touching the disk.

A capacity of 0 disables the cache entirely: every ``get`` misses and
``put`` is a no-op, which is the reference behaviour the parity tests
compare against.  All operations take an internal lock so read-only
traversals may share one tree across threads (see
:mod:`repro.core.executor`).
"""

from __future__ import annotations

import logging
import threading
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.obs import tracing as _tracing

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.nodes import Node
    from repro.storage.stats import IOStats

#: All live caches (weak refs), for the resource sampler's occupancy
#: gauges (:mod:`repro.obs.resources`).  WeakSet mutation is internally
#: locked and dead entries vanish on GC, so no lifecycle hooks needed.
_live_caches: "weakref.WeakSet[NodeCache]" = weakref.WeakSet()

#: Rough per-entry cost of a decoded node: the entry object, its MBR
#: floats, and dict/list slack.  An estimate for capacity planning, not
#: an accounting truth (see ``NodeCache.estimated_bytes``).
_ENTRY_BYTES = 200
_NODE_BYTES = 120


def live_caches() -> list["NodeCache"]:
    """Live NodeCache instances (weakly tracked)."""
    return list(_live_caches)


class NodeCache:
    """Fixed-capacity LRU cache of decoded :class:`~repro.index.nodes.Node`s.

    ``stats`` (optional) is the :class:`IOStats` of the page file backing
    the tree; when present, hits and misses are recorded there.
    """

    def __init__(self, capacity: int, stats: "IOStats | None" = None) -> None:
        if capacity < 0:
            raise StorageError(
                f"node cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self.stats = stats
        self._cache: OrderedDict[int, "Node"] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        _live_caches.add(self)

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def get(self, page_id: int) -> "Node | None":
        """Cached node for ``page_id``, or None (recorded as a miss)."""
        with self._lock:
            node = self._cache.get(page_id)
            if node is None:
                self.misses += 1
                if self.stats is not None:
                    self.stats.record_node_cache_miss()
                if _tracing.verbose:  # pragma: no branch - flag check
                    _tracing.instant(
                        "node_cache.miss", cat="cache", page_id=page_id
                    )
                return None
            self._cache.move_to_end(page_id)
            self.hits += 1
            if self.stats is not None:
                self.stats.record_node_cache_hit()
            if _tracing.verbose:
                _tracing.instant("node_cache.hit", cat="cache", page_id=page_id)
            return node

    def put(self, node: "Node") -> None:
        """Insert/refresh a node, evicting LRU entries past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._cache[node.page_id] = node
            self._cache.move_to_end(node.page_id)
            while len(self._cache) > self.capacity:
                evicted, _ = self._cache.popitem(last=False)
                if logger.isEnabledFor(logging.DEBUG):
                    logger.debug(
                        "node cache full (%d): evicted page %d for page %d",
                        self.capacity, evicted, node.page_id,
                    )

    def invalidate(self, page_id: int) -> None:
        """Drop one page's decoded node (call before rewriting the page)."""
        with self._lock:
            self._cache.pop(page_id, None)

    def clear(self) -> int:
        """Empty the cache (cold-cache runs); returns #nodes dropped."""
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
        if dropped and logger.isEnabledFor(logging.DEBUG):
            logger.debug("node cache cleared: %d decoded nodes dropped", dropped)
        return dropped

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (capacity and contents preserved)."""
        with self._lock:
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def peek(self, page_id: int) -> "Node | None":
        """Cached node without touching counters or LRU order.

        For coherence checks and tests only — the query path uses
        :meth:`get` so hit accounting stays truthful.
        """
        with self._lock:
            return self._cache.get(page_id)

    def page_ids(self) -> list[int]:
        """Page ids currently cached (LRU order, oldest first)."""
        with self._lock:
            return list(self._cache)

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def estimated_bytes(self) -> int:
        """Rough heap bytes held by cached nodes (entries dominate)."""
        with self._lock:
            nodes = len(self._cache)
            entries = sum(len(n.entries) for n in self._cache.values())
        return nodes * _NODE_BYTES + entries * _ENTRY_BYTES

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._cache
