"""LRU buffer pool over a page file.

Indexes never read pages directly; they go through a :class:`BufferPool`
so repeated traversals of hot upper-level nodes are served from memory,
exactly as in the disk-resident setting the paper evaluates.  Hits are
counted separately from physical reads so benchmarks can report both.
"""

from __future__ import annotations

import logging
import threading
import weakref
from collections import OrderedDict

from repro.errors import StorageError
from repro.obs import tracing as _tracing
from repro.storage.page import Page
from repro.storage.pagefile import PageFile

logger = logging.getLogger(__name__)

DEFAULT_BUFFER_PAGES = 256

#: All live pools (weak refs), for the resource sampler's occupancy
#: gauges (:mod:`repro.obs.resources`).
_live_pools: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


def live_pools() -> list["BufferPool"]:
    """Live BufferPool instances (weakly tracked)."""
    return list(_live_pools)


class BufferPool:
    """A fixed-capacity LRU cache of decoded pages.

    LRU bookkeeping is guarded by a lock so read-only index traversals can
    share one pool across executor threads (see
    :mod:`repro.core.executor`).
    """

    def __init__(self, pagefile: PageFile, capacity: int = DEFAULT_BUFFER_PAGES) -> None:
        if capacity < 1:
            raise StorageError(f"buffer capacity must be >= 1, got {capacity}")
        self.pagefile = pagefile
        self.capacity = capacity
        self._cache: OrderedDict[int, Page] = OrderedDict()
        self._lock = threading.Lock()
        _live_pools.add(self)

    def estimated_bytes(self) -> int:
        """Cached pages times the page size (decoded Page overhead aside)."""
        with self._lock:
            return len(self._cache) * self.pagefile.page_size

    @property
    def stats(self):
        """The underlying page file's I/O statistics."""
        return self.pagefile.stats

    def read(self, page_id: int) -> Page:
        """Fetch a page, serving from cache when possible."""
        with self._lock:
            cached = self._cache.get(page_id)
            if cached is not None:
                self._cache.move_to_end(page_id)
                self.pagefile.stats.record_hit()
                if _tracing.verbose:
                    _tracing.instant(
                        "buffer.hit", cat="cache", page_id=page_id
                    )
                return cached
        if _tracing.verbose:
            _tracing.instant("buffer.miss", cat="cache", page_id=page_id)
        page = self.pagefile.read(page_id)
        self._insert(page)
        return page

    def write(self, page: Page) -> None:
        """Write through to the page file and refresh the cached copy."""
        self.pagefile.write(page)
        self._insert(page)

    def allocate(self) -> int:
        """Reserve a new page id in the underlying file."""
        return self.pagefile.allocate()

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the cache (e.g. after out-of-band mutation)."""
        with self._lock:
            self._cache.pop(page_id, None)

    def clear(self) -> int:
        """Empty the cache; subsequent reads hit the page file.

        Returns the number of pages dropped.
        """
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
        if dropped and logger.isEnabledFor(logging.DEBUG):
            logger.debug("buffer pool cleared: %d pages dropped", dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._cache

    def _insert(self, page: Page) -> None:
        with self._lock:
            self._cache[page.page_id] = page
            self._cache.move_to_end(page.page_id)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
