"""I/O accounting.

The paper reports query cost as execution time broken into time spent on
disk accesses and CPU time (Section 8.1, "Metrics").  Our substrate is a
simulated disk: every page fetch that misses the buffer pool is counted as
one I/O and charged a configurable per-page cost, which the bench harness
reports alongside measured CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Nominal cost of one random 4 KiB page read on the paper-era spinning disk
# (~8-10 ms seek+rotate; we use a round 8 ms).  Only the *ratio* between
# I/O and CPU cost matters for the reproduced shapes; the constant is
# configurable per page file.
DEFAULT_PAGE_READ_COST_S = 0.008


@dataclass(slots=True)
class IOStats:
    """Mutable counters for page-level I/O activity."""

    reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    node_cache_hits: int = 0
    node_cache_misses: int = 0
    page_read_cost_s: float = field(default=DEFAULT_PAGE_READ_COST_S)

    def record_read(self) -> None:
        """Count one physical page read."""
        self.reads += 1

    def record_write(self) -> None:
        """Count one physical page write."""
        self.writes += 1

    def record_hit(self) -> None:
        """Count one buffer-pool hit (logical read served from memory)."""
        self.buffer_hits += 1

    def record_node_cache_hit(self) -> None:
        """Count one decoded-node cache hit (no page access, no decode)."""
        self.node_cache_hits += 1

    def record_node_cache_miss(self) -> None:
        """Count one decoded-node cache miss (page fetched and decoded)."""
        self.node_cache_misses += 1

    @property
    def logical_reads(self) -> int:
        """Physical reads plus buffer hits."""
        return self.reads + self.buffer_hits

    @property
    def io_time_s(self) -> float:
        """Simulated time spent on physical reads."""
        return self.reads * self.page_read_cost_s

    def reset(self) -> None:
        """Zero all counters (cost constant is preserved)."""
        self.reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self.node_cache_hits = 0
        self.node_cache_misses = 0

    def snapshot(self) -> "IOStats":
        """Copy of the current counters."""
        return IOStats(
            reads=self.reads,
            writes=self.writes,
            buffer_hits=self.buffer_hits,
            node_cache_hits=self.node_cache_hits,
            node_cache_misses=self.node_cache_misses,
            page_read_cost_s=self.page_read_cost_s,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            buffer_hits=self.buffer_hits - earlier.buffer_hits,
            node_cache_hits=self.node_cache_hits - earlier.node_cache_hits,
            node_cache_misses=self.node_cache_misses - earlier.node_cache_misses,
            page_read_cost_s=self.page_read_cost_s,
        )
