"""Dataset containers for data objects and feature sets.

A :class:`FeatureDataset` couples the feature objects with the vocabulary
they are described in; the query layer needs both (query keywords are
resolved against the same vocabulary).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import DatasetError
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary


@dataclass(slots=True)
class ObjectDataset:
    """An ordered collection of data objects with unique ids."""

    objects: list[DataObject] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [o.oid for o in self.objects]
        if len(set(ids)) != len(ids):
            raise DatasetError("duplicate data object ids")
        self._by_id = {o.oid: o for o in self.objects}

    _by_id: dict[int, DataObject] = field(init=False, repr=False)

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self) -> Iterator[DataObject]:
        return iter(self.objects)

    def get(self, oid: int) -> DataObject:
        """Look up a data object by id."""
        try:
            return self._by_id[oid]
        except KeyError:
            raise DatasetError(f"unknown data object id {oid}") from None


@dataclass(slots=True)
class FeatureDataset:
    """A feature set F_i: feature objects plus their vocabulary."""

    features: list[FeatureObject] = field(default_factory=list)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    label: str = ""

    def __post_init__(self) -> None:
        ids = [f.fid for f in self.features]
        if len(set(ids)) != len(ids):
            raise DatasetError(f"duplicate feature ids in set {self.label!r}")
        size = self.vocabulary.size
        for f in self.features:
            bad = [k for k in f.keywords if k >= size]
            if bad:
                raise DatasetError(
                    f"feature {f.fid} uses term ids {bad} outside the "
                    f"{size}-term vocabulary"
                )
        self._by_id = {f.fid: f for f in self.features}

    _by_id: dict[int, FeatureObject] = field(init=False, repr=False)

    def __len__(self) -> int:
        return len(self.features)

    def __iter__(self) -> Iterator[FeatureObject]:
        return iter(self.features)

    def get(self, fid: int) -> FeatureObject:
        """Look up a feature object by id."""
        try:
            return self._by_id[fid]
        except KeyError:
            raise DatasetError(f"unknown feature id {fid}") from None

    def resolve_keywords(self, terms: Sequence[str]) -> frozenset[int]:
        """Map keyword strings to term ids, ignoring out-of-vocabulary terms."""
        ids = (self.vocabulary.term_id(t) for t in terms)
        return frozenset(i for i in ids if i is not None)
