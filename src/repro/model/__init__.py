"""Data model: data objects, feature objects and dataset containers."""

from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject

__all__ = ["DataObject", "FeatureDataset", "FeatureObject", "ObjectDataset"]
