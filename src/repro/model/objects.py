"""Core record types: data objects and feature objects (Section 3).

* A *data object* ``p`` (e.g. a hotel) has only a spatial location; it is
  the thing the query ranks.
* A *feature object* ``t`` (e.g. a restaurant) additionally carries a
  non-spatial quality score ``t.s`` in [0, 1] and a keyword set ``t.W``.

Keywords are stored as vocabulary term ids (ints); the mapping to strings
lives in :class:`repro.text.Vocabulary`.  An optional human-readable name
supports the real-world dataset generator and the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import DatasetError
from repro.geometry.point import Coords


@dataclass(frozen=True, slots=True)
class DataObject:
    """A rankable spatial object (hotel, apartment, ...)."""

    oid: int
    x: float
    y: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.oid < 0:
            raise DatasetError(f"negative object id {self.oid}")
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise DatasetError(f"non-finite location for object {self.oid}")

    @property
    def location(self) -> Coords:
        """The (x, y) position."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class FeatureObject:
    """A facility with quality score and textual description."""

    fid: int
    x: float
    y: float
    score: float
    keywords: frozenset[int] = field(default_factory=frozenset)
    name: str = ""

    def __post_init__(self) -> None:
        if self.fid < 0:
            raise DatasetError(f"negative feature id {self.fid}")
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise DatasetError(f"non-finite location for feature {self.fid}")
        if not 0.0 <= self.score <= 1.0:
            raise DatasetError(
                f"feature {self.fid}: score {self.score} outside [0, 1]"
            )
        if any(k < 0 for k in self.keywords):
            raise DatasetError(f"feature {self.fid}: negative keyword id")

    @property
    def location(self) -> Coords:
        """The (x, y) position."""
        return (self.x, self.y)

    def keyword_mask(self) -> int:
        """Keyword set as a bit mask (bit ``i`` set iff term ``i`` present)."""
        mask = 0
        for k in self.keywords:
            mask |= 1 << k
        return mask
