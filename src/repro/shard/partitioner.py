"""Spatial partitioning with r-halo feature replication.

Splits the data objects ``O`` into ``S`` disjoint spatial shards and
assigns each shard the feature objects that can influence its objects.
Safety comes straight from the paper's score decomposition: with the
range score (Definition 2), ``τ_i(p)`` only depends on features ``t``
with ``dist(p, t) <= r``, so a shard whose objects live inside ``bbox``
needs exactly the features within Euclidean distance ``r`` of ``bbox`` —
the *r-halo*.  Features in the halo band are replicated into every shard
they can reach; objects are never replicated.

The influence and nearest-neighbor variants (Definitions 6/7) have
unbounded spatial support — an arbitrarily distant feature can still be
the nearest relevant one — so for them the partitioner replicates the
*full* feature sets per shard (``replication="full"``); only the object
side is partitioned.  :class:`~repro.shard.ShardedQueryProcessor`
enforces the matching query shapes at query time.

Two layouts:

* ``"grid"`` — an ``a x b`` grid over the object bounding box with
  ``a·b = S`` and ``|a - b|`` minimal (a prime ``S`` degenerates to
  ``1 x S`` strips).  Cells are equal-sized; deterministic assignment
  puts a point lying exactly on an internal boundary into the
  higher-index cell.
* ``"kd"`` — recursive object-count-balanced median splits along the
  longer bbox side, producing ``S`` leaves with ±1-balanced object
  counts even for heavily skewed data.

Both are deterministic functions of the input datasets, so rebuilding a
partition always yields identical shards.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ShardError
from repro.geometry.rect import Rect
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject

PARTITION_METHODS = ("grid", "kd")
REPLICATION_MODES = ("halo", "full")


@dataclass(slots=True)
class ShardSpec:
    """One shard: its spatial region plus the datasets assigned to it.

    ``bbox`` is the shard's *assignment region* (objects inside belong to
    the shard); ``radius`` is the halo radius its feature sets were
    replicated with (``inf`` for full replication).
    """

    shard_id: int
    bbox: Rect
    radius: float
    objects: ObjectDataset
    feature_sets: list[FeatureDataset] = field(default_factory=list)

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    @property
    def n_features(self) -> int:
        return sum(len(fs) for fs in self.feature_sets)

    def describe(self) -> dict:
        """JSON-friendly summary (used by the manifest and benchmarks)."""
        return {
            "shard_id": self.shard_id,
            "bbox": [list(self.bbox.low), list(self.bbox.high)],
            "radius": self.radius,
            "objects": self.n_objects,
            "features": [len(fs) for fs in self.feature_sets],
        }

    def geometry(self) -> tuple:
        """Cheap transferable identity: no live datasets, just tuples.

        What crosses a process boundary in place of the spec itself (the
        datasets stay behind; workers reopen the shard's *indexes* from
        shared memory — see :mod:`repro.shard.process_runner`).
        """
        return (
            self.shard_id,
            (tuple(self.bbox.low), tuple(self.bbox.high)),
            self.radius,
        )


def partition(
    objects: ObjectDataset,
    feature_sets: Sequence[FeatureDataset],
    shards: int,
    radius: float,
    method: str = "grid",
    replication: str = "halo",
    drop_empty: bool = True,
) -> list[ShardSpec]:
    """Split datasets into ``shards`` specs with halo-replicated features.

    ``radius`` is the largest query radius the partition must support;
    queries with a bigger ``r`` are rejected by the sharded processor
    because their halo would be too thin.  ``drop_empty`` (default)
    removes shards that received no data objects — they can never
    contribute a result — while always keeping at least one shard so an
    empty dataset still builds a valid processor.
    """
    if shards < 1:
        raise ShardError(-1, f"shard count must be >= 1, got {shards}")
    if replication not in REPLICATION_MODES:
        raise ShardError(
            -1, f"unknown replication {replication!r}; choose from "
            f"{REPLICATION_MODES}"
        )
    if replication == "halo" and not (radius > 0.0 and math.isfinite(radius)):
        raise ShardError(
            -1, f"halo radius must be positive and finite, got {radius}"
        )
    if method not in PARTITION_METHODS:
        raise ShardError(
            -1, f"unknown partition method {method!r}; choose from "
            f"{PARTITION_METHODS}"
        )

    domain = _domain(objects)
    if method == "grid":
        regions = grid_regions(domain, shards)
        buckets = _assign_grid(objects, domain, regions)
    else:
        regions, buckets = kd_split(list(objects), domain, shards)

    halo = math.inf if replication == "full" else radius
    specs: list[ShardSpec] = []
    for shard_id, (bbox, members) in enumerate(zip(regions, buckets)):
        specs.append(
            ShardSpec(
                shard_id=shard_id,
                bbox=bbox,
                radius=halo,
                objects=ObjectDataset(members),
                feature_sets=[
                    _halo_features(fs, bbox, halo) for fs in feature_sets
                ],
            )
        )
    if drop_empty:
        kept = [s for s in specs if s.n_objects]
        if kept:
            # Renumber for dense, stable shard ids.
            for i, spec in enumerate(kept):
                spec.shard_id = i
            return kept
        return specs[:1]
    return specs


# ----------------------------------------------------------------------
# layouts
# ----------------------------------------------------------------------
def grid_factors(shards: int) -> tuple[int, int]:
    """``(cols, rows)`` with ``cols*rows == shards`` and minimal skew."""
    best = (1, shards)
    for a in range(1, int(math.isqrt(shards)) + 1):
        if shards % a == 0:
            best = (shards // a, a)
    return best


def grid_regions(domain: Rect, shards: int) -> list[Rect]:
    """Equal-sized grid cells tiling ``domain`` (row-major order)."""
    cols, rows = grid_factors(shards)
    (x0, y0), (x1, y1) = domain.low, domain.high
    w = (x1 - x0) / cols
    h = (y1 - y0) / rows
    cells = []
    for row in range(rows):
        for col in range(cols):
            cells.append(
                Rect(
                    (x0 + col * w, y0 + row * h),
                    (
                        x1 if col == cols - 1 else x0 + (col + 1) * w,
                        y1 if row == rows - 1 else y0 + (row + 1) * h,
                    ),
                )
            )
    return cells


def _assign_grid(
    objects: ObjectDataset, domain: Rect, regions: list[Rect]
) -> list[list[DataObject]]:
    cols, rows = grid_factors(len(regions))
    (x0, y0), (x1, y1) = domain.low, domain.high
    w = (x1 - x0) or 1.0
    h = (y1 - y0) or 1.0
    buckets: list[list[DataObject]] = [[] for _ in regions]
    for obj in objects:
        col = min(int((obj.x - x0) / w * cols), cols - 1)
        row = min(int((obj.y - y0) / h * rows), rows - 1)
        buckets[row * cols + col].append(obj)
    return buckets


def kd_split(
    members: list[DataObject], bbox: Rect, shards: int
) -> tuple[list[Rect], list[list[DataObject]]]:
    """Recursive count-balanced splits along the longer bbox side.

    Splits ``shards`` into ``ceil/floor`` halves, places the cut at the
    proportional order statistic of the member coordinates (midpoint of
    the straddling pair, so points sit strictly inside a half whenever
    coordinates differ), and recurses.  Points exactly on a cut go to the
    upper half — deterministically, mirroring the grid rule.
    """
    if shards == 1 or not members:
        # No members left to split on: emit the region (and empty tails).
        if shards == 1:
            return [bbox], [members]
        regions = [bbox] * shards
        buckets: list[list[DataObject]] = [members] + [
            [] for _ in range(shards - 1)
        ]
        return regions, buckets
    left_shards = (shards + 1) // 2
    axis = 0 if bbox.extent(0) >= bbox.extent(1) else 1
    coords = sorted(m.x if axis == 0 else m.y for m in members)
    if len(coords) >= 2:
        # Cut after the proportional count; midpoint of the straddling
        # pair.
        pivot_idx = max(
            1, min(len(coords) - 1, round(len(coords) * left_shards / shards))
        )
        cut = (coords[pivot_idx - 1] + coords[pivot_idx]) / 2.0
    else:
        # A single member cannot straddle: cut the region itself.
        cut = (bbox.low[axis] + bbox.high[axis]) / 2.0
    lo, hi = bbox.low[axis], bbox.high[axis]
    cut = min(max(cut, lo), hi)
    key = (lambda m: m.x) if axis == 0 else (lambda m: m.y)
    left_members = [m for m in members if key(m) < cut]
    right_members = [m for m in members if key(m) >= cut]
    if axis == 0:
        left_box = Rect(bbox.low, (cut, bbox.high[1]))
        right_box = Rect((cut, bbox.low[1]), bbox.high)
    else:
        left_box = Rect(bbox.low, (bbox.high[0], cut))
        right_box = Rect((bbox.low[0], cut), bbox.high)
    lr, lb = kd_split(left_members, left_box, left_shards)
    rr, rb = kd_split(right_members, right_box, shards - left_shards)
    return lr + rr, lb + rb


# ----------------------------------------------------------------------
# update routing (live mutations)
# ----------------------------------------------------------------------
def owning_shard_index(specs: Sequence[ShardSpec], point: tuple) -> int:
    """List index of the shard that owns a data object at ``point``.

    The owner is the spec whose assignment region contains the point;
    a point on a shared boundary goes to the *highest-index* containing
    shard, mirroring the build-time rules (grid: boundary point to the
    higher-index cell; kd: ``>= cut`` to the upper half).  A point
    outside every region (possible after ``drop_empty`` or for inserts
    beyond the original domain) falls back to the nearest region, same
    tie-break — live range queries then need the halo to cover it, which
    :class:`~repro.live.LiveShardedDataset` checks at insert time.
    """
    if not specs:
        raise ShardError(-1, "no shard specs to route into")
    best = 0
    best_dist = math.inf
    for i, spec in enumerate(specs):
        dist = spec.bbox.mindist(point)
        if dist < best_dist or (dist == best_dist and i > best):
            best, best_dist = i, dist
    return best


def halo_shard_indices(
    specs: Sequence[ShardSpec], point: tuple
) -> tuple[int, ...]:
    """List indices of every shard whose r-halo covers ``point``.

    The live replica set of a feature at ``point``: exactly the shards
    :func:`_halo_features` would have replicated it into at build time
    (``bbox.mindist(point) <= radius``; ``inf`` radius keeps all shards).
    """
    return tuple(
        i
        for i, spec in enumerate(specs)
        if math.isinf(spec.radius)
        or spec.bbox.mindist(point) <= spec.radius
    )


# ----------------------------------------------------------------------
# halo replication
# ----------------------------------------------------------------------
def _halo_features(
    feature_set: FeatureDataset, bbox: Rect, radius: float
) -> FeatureDataset:
    """Features within Euclidean ``radius`` of ``bbox`` (its r-halo).

    ``mindist`` is the exact Euclidean point-to-rectangle distance, so a
    feature is kept iff *some* point of the shard region can see it
    within ``radius`` — no corner-cutting approximation.  ``radius=inf``
    keeps everything (full replication).
    """
    if math.isinf(radius):
        members = list(feature_set.features)
    else:
        members = [
            f
            for f in feature_set.features
            if bbox.mindist((f.x, f.y)) <= radius
        ]
    return FeatureDataset(
        members, feature_set.vocabulary, feature_set.label
    )


def _domain(objects: ObjectDataset) -> Rect:
    """Bounding box of the objects (unit square for empty datasets)."""
    if len(objects):
        return Rect.bounding((o.x, o.y) for o in objects)
    return Rect((0.0, 0.0), (1.0, 1.0))
