"""Process-parallel shard execution over shared-memory page storage.

The thread-mode fan-out in :mod:`repro.shard.sharded_processor` is
GIL-bound: per-shard STPS work is pure Python, so threads interleave on
one core.  This module runs shard queries on *physical* cores:

1. **freeze** — each shard's built indexes are frozen into
   :class:`~repro.storage.shm.SharedMemoryPageFile` segments
   (:func:`freeze_shard`), one per tree, and the parent's own processor
   is reopened over the frozen storage so parent and workers share one
   copy of every page;
2. **manifest** — a :class:`ShardManifest` carries only segment names,
   page geometry, and the shard's :meth:`~repro.shard.partitioner.ShardSpec.geometry`
   across the process boundary — no datasets, no pickled trees;
3. **attach** — each worker process lazily attaches the segments,
   reopens the trees (:func:`repro.index.reopen.open_tree`), and caches
   one lightweight :class:`~repro.core.processor.QueryProcessor` per
   shard for reuse across queries (its buffer pool and decoded-node
   cache are worker-local, so hot queries stay hot per worker);
4. **observe** — the worker runs the query under the parent's trace id,
   then ships back the :class:`~repro.core.results.QueryResult` plus a
   metrics-registry delta (:func:`repro.obs.metrics.diff_state`), the
   serialized EXPLAIN sub-plan, and any flight-recorder records, so the
   parent's registry, plans, and ring buffer reconcile exactly as in
   thread mode.

Cold-cache semantics: ``ShardedQueryProcessor.clear_buffers`` cannot
reach worker-process caches directly, so it bumps a per-processor
*cache epoch* that travels with every task; a worker seeing a newer
epoch for a shard clears that shard's caches before executing.  This
keeps cold-run benchmarks honest in process mode.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context

from repro.core.processor import QueryProcessor
from repro.errors import ReproError, ShardError
from repro.index.reopen import open_tree
from repro.obs import explain as _explain
from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.storage.shm import SharedMemoryPageFile

#: Start methods the runner accepts (None = platform default).
START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True)
class TreeManifest:
    """One frozen tree: everything a worker needs to reopen it."""

    shm_name: str
    page_size: int
    page_count: int
    buffer_pages: int


@dataclass(frozen=True)
class ShardManifest:
    """One shard's transferable storage description (no live objects)."""

    shard_id: int
    bbox: tuple
    radius: float
    object_tree: TreeManifest
    feature_trees: tuple[TreeManifest, ...]


def freeze_shard(
    spec_geometry: tuple,
    processor: QueryProcessor,
    buffer_pages: int,
) -> tuple[QueryProcessor, ShardManifest]:
    """Freeze a shard's indexes into shared memory.

    Returns a *replacement* parent-side processor whose trees read the
    frozen segments (the parent owns them and unlinks on close) plus the
    manifest workers attach by.  The original in-memory page files are
    released to the garbage collector — pages exist once, in the shared
    segments.
    """
    shard_id, bbox, radius = spec_geometry
    frozen_trees = []
    manifests = []
    for tree in processor.trees():
        shm_file = SharedMemoryPageFile.freeze(tree.pagefile)
        frozen_trees.append(open_tree(shm_file, buffer_pages))
        manifests.append(TreeManifest(
            shm_name=shm_file.name,
            page_size=shm_file.page_size,
            page_count=shm_file.page_count,
            buffer_pages=buffer_pages,
        ))
    manifest = ShardManifest(
        shard_id=shard_id,
        bbox=bbox,
        radius=radius,
        object_tree=manifests[0],
        feature_trees=tuple(manifests[1:]),
    )
    return QueryProcessor(frozen_trees[0], frozen_trees[1:]), manifest


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-worker-process state: manifests by shard id, cached processors,
#: and the last cache epoch each shard was cleared at.
_WORKER: dict = {"manifests": {}, "processors": {}, "epochs": {}}


def _worker_init(manifests: list[ShardManifest]) -> None:
    _WORKER["manifests"] = {m.shard_id: m for m in manifests}
    _WORKER["processors"] = {}
    _WORKER["epochs"] = {}


def _refresh_manifest(
    shard_id: int, manifest: "ShardManifest | None"
) -> None:
    """Adopt a replacement manifest for a shard (live refreeze).

    Live mutations (:mod:`repro.live`) refreeze a mutated shard into
    *new* shared-memory segments and ship the new manifest with every
    subsequent task.  A worker holding the previous manifest unmaps its
    cached attachment so the old (already-unlinked) segments can be
    reclaimed, then reopens lazily from the new one.  Manifests are
    frozen dataclasses, so equality compares segment names — a no-op for
    every task of an unchanged shard.
    """
    if manifest is None:
        return
    if _WORKER["manifests"].get(shard_id) == manifest:
        return
    stale = _WORKER["processors"].pop(shard_id, None)
    if stale is not None:
        for tree in stale.trees():
            try:
                tree.pagefile.close()
            except Exception:  # pragma: no cover - unmap best-effort
                pass
    _WORKER["manifests"][shard_id] = manifest
    _WORKER["epochs"].pop(shard_id, None)


def _worker_processor(shard_id: int) -> QueryProcessor:
    processor = _WORKER["processors"].get(shard_id)
    if processor is None:
        manifest = _WORKER["manifests"].get(shard_id)
        if manifest is None:
            raise ShardError(
                shard_id, "worker has no manifest for this shard"
            )
        trees = [
            open_tree(
                SharedMemoryPageFile.attach(tm.shm_name), tm.buffer_pages
            )
            for tm in (manifest.object_tree, *manifest.feature_trees)
        ]
        processor = QueryProcessor(trees[0], trees[1:])
        _WORKER["processors"][shard_id] = processor
    return processor


def _run_shard_query(
    shard_id: int,
    epoch: int,
    query,
    algorithm: str,
    pulling: str,
    batch_size: int,
    parallelism: int | None,
    floor: float,
    trace_id: str,
    explain: bool,
    flight_enabled: bool,
    flight_threshold_s: float,
    trace_enabled: bool = False,
    trace_verbose: bool = False,
    exemplars: bool = False,
    manifest: "ShardManifest | None" = None,
) -> dict:
    """Execute one shard query in a worker process; returns plain data.

    Never raises: failures come back as an error payload (with the
    pickled exception when transferable) so the metrics delta and any
    flight records survive the failure, exactly as they would in-process.

    When the parent has tracing on (``trace_enabled``), the worker
    records its own spans for this query and ships them back in the
    payload's ``spans`` entry — events, thread names, and the worker's
    trace epoch — so the parent can rebase them onto its timeline
    (:func:`repro.obs.tracing.ingest`) and Chrome-trace export shows the
    shard-worker tracks.  ``exemplars`` mirrors the parent's exemplar
    flag so worker histogram observations carry trace ids too (they
    travel inside the metrics delta).
    """
    _flight.configure(
        enabled_=flight_enabled, latency_threshold_s=flight_threshold_s
    )
    if flight_enabled:
        _flight.clear()
    _tracing.set_enabled(trace_enabled, verbose_events=trace_verbose)
    if trace_enabled:
        # The previous query's events were already shipped; start clean
        # so this payload carries exactly this query's spans.
        _tracing.clear()
    _metrics.set_exemplars(exemplars)
    collector = _explain.DiagnosticsCollector() if explain else None
    before = _metrics.snapshot_state()
    t0 = time.perf_counter()
    error_payload = None
    result = None
    try:
        # Everything — attach included — stays inside the try: a raise
        # escaping this function would have to pickle through the pool's
        # result queue instead of the controlled payload below.
        _refresh_manifest(shard_id, manifest)
        processor = _worker_processor(shard_id)
        if _WORKER["epochs"].get(shard_id, -1) < epoch:
            processor.clear_buffers()
            _WORKER["epochs"][shard_id] = epoch
        with _tracing.trace_scope(trace_id):
            result = processor.query(
                query,
                algorithm=algorithm,
                pulling=pulling,
                batch_size=batch_size,
                parallelism=parallelism,
                floor=floor,
                collector=collector,
            )
    except Exception as exc:  # noqa: BLE001 — transferred to the parent
        try:
            pickled = pickle.dumps(exc)
        except Exception:
            pickled = None
        error_payload = {
            "type": type(exc).__name__,
            "message": str(exc),
            "is_repro": isinstance(exc, ReproError),
            "pickled": pickled,
        }
    elapsed_s = time.perf_counter() - t0
    payload = {
        "shard_id": shard_id,
        "elapsed_s": elapsed_s,
        "result": result,
        "error": error_payload,
        "metrics": _metrics.diff_state(before, _metrics.snapshot_state()),
        "plan": (
            collector.plan().to_dict()
            if collector is not None and error_payload is None
            else None
        ),
        "flight": (
            [r.to_dict() for r in _flight.records()]
            if flight_enabled
            else []
        ),
        "spans": (
            {
                "events": _tracing.events(),
                "thread_names": _tracing.thread_name_map(),
                "epoch": _tracing.epoch(),
            }
            if trace_enabled
            else None
        ),
    }
    return payload


def unpickle_error(error_payload: dict, shard_id: int) -> Exception:
    """Rehydrate a worker failure into the exception to raise.

    A pickled :class:`ReproError` is re-raised as itself (mirroring the
    thread-mode contract); anything else is wrapped in a
    :class:`ShardError` carrying the shard id and original rendering.
    """
    pickled = error_payload.get("pickled")
    if pickled is not None and error_payload.get("is_repro"):
        try:
            exc = pickle.loads(pickled)
            if isinstance(exc, ReproError):
                return exc
        except Exception:
            pass
    return ShardError(
        shard_id, f"{error_payload['type']}: {error_payload['message']}"
    )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessShardRunner:
    """A persistent worker-process pool over frozen shard storage.

    Workers are initialized once with the shard manifests and cache
    per-shard processors across queries, so steady-state dispatch cost
    is one small pickle each way per shard query.
    """

    def __init__(
        self,
        manifests: list[ShardManifest],
        max_workers: int,
        start_method: str | None = None,
    ) -> None:
        if start_method is not None and start_method not in START_METHODS:
            raise ShardError(
                -1,
                f"unknown start method {start_method!r}; choose from "
                f"{START_METHODS}",
            )
        if max_workers < 1:
            raise ShardError(-1, f"need >= 1 worker, got {max_workers}")
        self.start_method = start_method
        self.max_workers = max_workers
        ctx = get_context(start_method) if start_method else get_context()
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(list(manifests),),
        )
        self._closed = False

    def submit(
        self,
        shard_id: int,
        epoch: int,
        query,
        algorithm: str,
        pulling: str,
        batch_size: int,
        parallelism: int | None,
        floor: float,
        trace_id: str,
        explain: bool,
        manifest: ShardManifest | None = None,
    ) -> Future:
        """Dispatch one shard query; resolves to a worker payload dict.

        ``manifest`` (optional) travels with the task so a worker whose
        cached attachment predates a live refreeze re-attaches to the
        replacement segments before executing (see
        :func:`_refresh_manifest`).
        """
        if self._closed:
            raise ShardError(-1, "process runner is closed")
        return self._pool.submit(
            _run_shard_query,
            shard_id,
            epoch,
            query,
            algorithm,
            pulling,
            batch_size,
            parallelism,
            floor,
            trace_id,
            explain,
            _flight.enabled,
            _flight.latency_threshold(),
            # A per-request span sink on the dispatching context wants
            # worker spans too: the parent's ingest() routes them into
            # the sink (and into the global buffer only when tracing is
            # globally on).
            _tracing.enabled or _tracing.current_sink() is not None,
            _tracing.verbose,
            _metrics.exemplars_enabled,
            manifest=manifest,
        )

    def close(self, wait: bool = True) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ProcessShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # safety net; close() is the real API
        try:
            self.close(wait=False)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
