"""Sharded parallel query engine.

Partitions the object dataset into ``S`` spatial shards with
halo-replicated feature sets (:mod:`repro.shard.partitioner`) and fans
queries across per-shard :class:`~repro.core.processor.QueryProcessor`
instances with cross-shard threshold propagation and shard-level pruning
(:mod:`repro.shard.sharded_processor`).  Results are bit-identical to an
unsharded processor for every supported query shape.
"""

from repro.shard.partitioner import (
    PARTITION_METHODS,
    REPLICATION_MODES,
    ShardSpec,
    grid_factors,
    grid_regions,
    kd_split,
    partition,
)
from repro.shard.process_runner import (
    ProcessShardRunner,
    ShardManifest,
    TreeManifest,
    freeze_shard,
)
from repro.shard.sharded_processor import FANOUT_MODES, ShardedQueryProcessor

__all__ = [
    "FANOUT_MODES",
    "PARTITION_METHODS",
    "REPLICATION_MODES",
    "ProcessShardRunner",
    "ShardManifest",
    "ShardSpec",
    "ShardedQueryProcessor",
    "TreeManifest",
    "freeze_shard",
    "grid_factors",
    "grid_regions",
    "kd_split",
    "partition",
]
