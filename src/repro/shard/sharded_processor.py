"""Sharded parallel query engine: partition, fan out, merge.

A :class:`ShardedQueryProcessor` owns one
:class:`~repro.core.processor.QueryProcessor` per spatial shard (built
from a :func:`~repro.shard.partitioner.partition` of the datasets) and
answers exactly the same queries as an unsharded processor:

1. **bound** — each shard advertises a per-query upper bound
   ``Σ_i max ŝ_i(shard)`` computed from its feature-tree roots (one node
   read per set, no traversal);
2. **fan out** — shards run in descending bound order on a worker pool
   (``shard.fanout`` span), each executing the ordinary per-shard
   algorithm with the *merged k-th score so far* as a floor, so later
   shards terminate as soon as they fall out of contention;
3. **prune** — a shard whose bound is strictly below the merged k-th
   score is skipped entirely (``repro_shard_queries{outcome="pruned"}``);
4. **merge** — per-shard top-k heaps are merged with the library-wide
   deterministic tie-break (score desc, oid asc; ``shard.merge`` span).

Exactness argument (DESIGN.md §10): objects are partitioned, features
are halo-replicated, so every object's score is computed by exactly one
shard from a feature view sufficient for the supported query shape; the
floor/prune cuts only ever drop items *strictly* below the final global
k-th score.  Results — ids and scores — are therefore identical to the
unsharded processor for every supported query, independent of shard
count, worker count, and pruning outcomes.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from threading import Lock

import heapq
import os

from repro.core.combinations import PULL_PRIORITIZED
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, rank_items
from repro.core.stds import DEFAULT_BATCH_SIZE
from repro.errors import QueryError, ReproError, ShardError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.obs import explain as _explain
from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.shard.partitioner import ShardSpec, partition
from repro.shard.process_runner import (
    ProcessShardRunner,
    ShardManifest,
    freeze_shard,
    unpickle_error,
)
from repro.storage.shm import SharedMemoryPageFile

#: Fan-out execution modes: GIL-sharing threads (default, zero setup
#: cost) or worker processes over shared-memory page storage (true
#: multi-core parallelism for the pure-Python per-shard work).
FANOUT_MODES = ("threads", "processes")

#: Metric families owned by this module — the scope of
#: :meth:`ShardedQueryProcessor.reset_stats`'s registry reset.
SHARD_METRIC_FAMILIES = (
    "repro_shard_queries",
    "repro_shard_fanout_seconds",
)


def shard_queries_metric() -> "_metrics.MetricFamily":
    """Per-shard execution outcomes (``executed``/``pruned``/``failed``).

    Resolved against the *current* default registry on every call —
    deliberately not bound at import time, so a test-scoped registry
    (:class:`repro.obs.metrics.scoped_registry`) sees shard metrics.
    Callers on the query path resolve once per query, not per shard.
    """
    return _metrics.registry().counter(
        "repro_shard_queries",
        "Per-shard query executions by outcome.",
        ("algorithm", "outcome"),
    )


def shard_fanout_seconds_metric() -> "_metrics.MetricFamily":
    """Wall time of the whole fan-out (bounds + dispatch + gather).

    Lazily resolved; see :func:`shard_queries_metric`.
    """
    return _metrics.registry().histogram(
        "repro_shard_fanout_seconds",
        "Fan-out wall time of one sharded query.",
        ("algorithm",),
    )


class _GlobalTopK:
    """Thread-safe running k-th-best score across completed shards.

    ``floor()`` returns the merged k-th best score once at least ``k``
    items have been offered (``-inf`` before that) — a valid lower bound
    on the final global k-th score because offered items are a subset of
    all candidates.
    """

    __slots__ = ("_k", "_heap", "_lock")

    def __init__(self, k: int) -> None:
        self._k = k
        self._heap: list[float] = []  # min-heap of the best k scores
        self._lock = Lock()

    def offer(self, scores) -> None:
        with self._lock:
            heap = self._heap
            for score in scores:
                if len(heap) < self._k:
                    heapq.heappush(heap, score)
                elif score > heap[0]:
                    heapq.heapreplace(heap, score)

    def floor(self) -> float:
        with self._lock:
            if len(self._heap) < self._k:
                return -math.inf
            return self._heap[0]


class _Shard:
    """A spec plus the per-shard query processor built from it."""

    __slots__ = ("spec", "processor")

    def __init__(self, spec: ShardSpec, processor: QueryProcessor) -> None:
        self.spec = spec
        self.processor = processor

    def bound(self, query: PreferenceQuery) -> float:
        """``Σ_i max ŝ_i`` over this shard's feature roots.

        ``ŝ(e)`` upper-bounds every descendant feature's preference score
        (Section 4.2), a feature's preference score upper-bounds its
        contribution under *every* variant (range/nearest use it
        directly; influence multiplies by ``2^{-d/r} <= 1``), and
        ``τ(p) = Σ_i τ_i(p)`` — so no object in this shard can beat the
        sum of the per-set root maxima.  One cached node read per set.
        """
        total = 0.0
        for tree, mask in zip(
            self.processor.feature_trees, query.keyword_masks
        ):
            if tree.root_id is None or tree.count == 0:
                continue
            scorer = tree.make_scorer(mask, query.lam)
            best = 0.0
            for entry in tree.root_node().entries:
                if scorer.relevant(entry):
                    value = scorer.bound(entry)
                    if value > best:
                        best = value
            total += best
        return total


class ShardedQueryProcessor:
    """Drop-in :class:`QueryProcessor` replacement over spatial shards.

    Build it from raw datasets::

        sharded = ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.02
        )
        result = sharded.query(query)            # == unsharded result

    ``radius`` is the largest query radius the halo supports; build with
    ``replication="full"`` to serve the influence / nearest variants
    (whose scores have unbounded spatial support).  The processor is
    duck-type compatible with :class:`~repro.core.executor.QueryExecutor`
    (``query``/``query_many``/``trees``/``clear_buffers``/``reset_stats``),
    so batch routing reuses the executor machinery unchanged.

    ``fanout`` selects the worker substrate: ``"threads"`` (default)
    shares the GIL, so per-shard CPU work serializes; ``"processes"``
    runs shards on a :class:`~repro.shard.process_runner.ProcessShardRunner`
    pool attached to shared-memory page storage — same results, same
    metrics/EXPLAIN/flight behavior, true multi-core scaling.  Build
    with ``fanout="processes"`` (the indexes must be frozen into shared
    memory at build time); ``start_method`` picks the multiprocessing
    start method (``None`` = platform default).
    """

    def __init__(
        self,
        shards: Sequence[_Shard],
        radius: float,
        max_workers: int | None = None,
        fanout: str = "threads",
        start_method: str | None = None,
        manifests: Sequence[ShardManifest] | None = None,
    ) -> None:
        if not shards:
            raise ShardError(-1, "need at least one shard")
        if fanout not in FANOUT_MODES:
            raise ShardError(
                -1, f"unknown fanout {fanout!r}; choose from {FANOUT_MODES}"
            )
        if fanout == "processes" and manifests is None:
            raise ShardError(
                -1,
                "fanout='processes' needs shared-memory manifests; build "
                "via ShardedQueryProcessor.build(..., fanout='processes')",
            )
        self.shards = list(shards)
        self.radius = radius
        self.max_workers = max_workers
        self.fanout = fanout
        self.start_method = start_method
        self._manifests = list(manifests) if manifests is not None else None
        self._pool: ThreadPoolExecutor | None = None
        self._process_runner: ProcessShardRunner | None = None
        self._pool_lock = Lock()
        self._closed = False
        #: Cache epoch forwarded with every process-mode task; bumped by
        #: :meth:`clear_buffers` so worker-side caches go cold too.
        self._epoch = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
        shards: int = 4,
        radius: float = 0.05,
        method: str = "grid",
        replication: str = "halo",
        index: str = "srt",
        page_size: int = 4096,
        buffer_pages: int = 256,
        build_method: str = "bulk",
        max_workers: int | None = None,
        fanout: str = "threads",
        start_method: str | None = None,
    ) -> "ShardedQueryProcessor":
        """Partition the datasets and build one processor per shard."""
        specs = partition(
            objects,
            feature_sets,
            shards,
            radius,
            method=method,
            replication=replication,
        )
        return cls.from_specs(
            specs,
            index=index,
            page_size=page_size,
            buffer_pages=buffer_pages,
            build_method=build_method,
            max_workers=max_workers,
            fanout=fanout,
            start_method=start_method,
        )

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[ShardSpec],
        index: str = "srt",
        page_size: int = 4096,
        buffer_pages: int = 256,
        build_method: str = "bulk",
        max_workers: int | None = None,
        fanout: str = "threads",
        start_method: str | None = None,
    ) -> "ShardedQueryProcessor":
        """Build from pre-partitioned specs (e.g. loaded from disk).

        With ``fanout="processes"`` each shard's freshly built indexes
        are frozen into shared-memory segments
        (:func:`~repro.shard.process_runner.freeze_shard`): the parent's
        own per-shard processors are reopened over the frozen pages (it
        owns the segments and unlinks them on :meth:`close`), and the
        returned manifests let worker processes attach the same pages
        read-only — one physical copy, zero pickling of trees.
        """
        if not specs:
            raise ShardError(-1, "no shard specs given")
        built = [
            _Shard(
                spec,
                QueryProcessor.build(
                    spec.objects,
                    spec.feature_sets,
                    index=index,
                    page_size=page_size,
                    buffer_pages=buffer_pages,
                    method=build_method,
                ),
            )
            for spec in specs
        ]
        radius = min(spec.radius for spec in specs)
        manifests = None
        if fanout == "processes":
            manifests = []
            for shard in built:
                frozen, manifest = freeze_shard(
                    shard.spec.geometry(), shard.processor, buffer_pages
                )
                shard.processor = frozen
                manifests.append(manifest)
        return cls(
            built,
            radius,
            max_workers=max_workers,
            fanout=fanout,
            start_method=start_method,
            manifests=manifests,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def specs(self) -> list[ShardSpec]:
        return [s.spec for s in self.shards]

    @property
    def manifests(self) -> "list[ShardManifest] | None":
        """Process-mode shard manifests (``None`` in thread mode)."""
        return None if self._manifests is None else list(self._manifests)

    def replace_manifest(self, idx: int, manifest: ShardManifest) -> None:
        """Swap shard ``idx``'s manifest after a live refreeze.

        The live-update layer (:mod:`repro.live`) freezes a mutated
        shard into fresh shared-memory segments and installs the new
        manifest here; every subsequent process-mode task for the shard
        carries it, so workers re-attach before executing.  The caller
        owns the old segments' teardown.
        """
        if self._manifests is None:
            raise ShardError(
                -1, "no manifests to replace (thread-mode processor)"
            )
        if not 0 <= idx < len(self._manifests):
            raise ShardError(-1, f"shard index {idx} out of range")
        self._manifests[idx] = manifest

    def bump_epoch(self) -> None:
        """Advance the cache epoch without touching parent-side caches.

        Used after live mutations: parent-side caches were invalidated
        write-through, but worker processes may still hold decoded nodes
        from before the mutation — the bumped epoch makes them clear on
        their next task for any shard.
        """
        self._epoch += 1

    def describe(self) -> dict:
        """JSON-friendly partition summary."""
        return {
            "shards": self.shard_count,
            "radius": None if math.isinf(self.radius) else self.radius,
            "replication": "full" if math.isinf(self.radius) else "halo",
            "fanout": self.fanout,
            "layout": [s.spec.describe() for s in self.shards],
        }

    def close(self) -> None:
        """Shut the fan-out pool down; subsequent queries raise.

        In process mode this also terminates the worker pool and
        unlinks the shared-memory segments (the parent owns them), so
        nothing is left behind in ``/dev/shm``.
        """
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, None
            runner, self._process_runner = self._process_runner, None
        if pool is not None:
            pool.shutdown(wait=True)
        if runner is not None:
            runner.close(wait=True)
        # Unlink owned shared-memory segments last: workers detach when
        # their processes exit above.
        for shard in self.shards:
            for tree in shard.processor.trees():
                if isinstance(tree.pagefile, SharedMemoryPageFile):
                    tree.pagefile.close()

    def __del__(self) -> None:
        # Safety net only — close() is the API.  Never raises, never
        # blocks on worker exit during interpreter teardown.
        try:
            if not self._closed:
                self._closed = True
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                if self._process_runner is not None:
                    self._process_runner.close(wait=False)
                for shard in self.shards:
                    for tree in shard.processor.trees():
                        if isinstance(tree.pagefile, SharedMemoryPageFile):
                            tree.pagefile.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __enter__(self) -> "ShardedQueryProcessor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def trees(self):
        """Every index of every shard (executor I/O attribution)."""
        out = []
        for shard in self.shards:
            out.extend(shard.processor.trees())
        return out

    def clear_buffers(self) -> dict[str, int]:
        """Drop cached pages/nodes in every shard (cold-cache runs).

        Worker-process caches cannot be reached synchronously, so the
        cache *epoch* is bumped instead: every process-mode task carries
        the current epoch and a worker holding a stale one clears that
        shard's caches before executing.  Cold-run benchmarks therefore
        stay cold in both fan-out modes.
        """
        self._epoch += 1
        dropped = {"pages": 0, "nodes": 0}
        for shard in self.shards:
            shard_dropped = shard.processor.clear_buffers()
            dropped["pages"] += shard_dropped["pages"]
            dropped["nodes"] += shard_dropped["nodes"]
        return dropped

    def reset_stats(self, metrics: bool = True) -> None:
        """Zero per-index counters in every shard.

        With ``metrics=True`` also zero the registry families this module
        owns (``SHARD_METRIC_FAMILIES``) — and only those: a sharded
        processor often coexists with an unsharded one (differential
        harness, benchmarks), and wiping the whole registry here would
        silently destroy the other engine's counters mid-comparison.
        Callers wanting a full wipe use ``metrics.registry().reset()``.
        """
        for shard in self.shards:
            shard.processor.reset_stats(metrics=False)
        if metrics:
            _metrics.registry().reset(names=SHARD_METRIC_FAMILIES)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def query(
        self,
        query: PreferenceQuery,
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        floor: float = float("-inf"),
        collector=None,
    ) -> QueryResult:
        """Execute one query across all shards; results match unsharded.

        ``floor`` composes with the internal cross-shard threshold (the
        larger of the two wins), so a sharded processor can itself sit
        behind another merger.  ``collector`` — an optional
        :class:`~repro.obs.explain.DiagnosticsCollector`; each shard gets
        a child collector and the parent plan records every shard's
        verdict (pruned/executed/failed) with its bound and floor.
        """
        if self._closed:
            raise ShardError(-1, "sharded processor is closed")
        self._check_supported(query)
        if query.k == 0:
            # Nothing to fan out for: k=0's empty answer is exact and
            # tie-complete regardless of shard layout or fanout mode
            # (and _GlobalTopK(0) has no meaningful floor).
            stats = QueryStats()
            stats.trace_id = (
                _tracing.current_trace_id() or _tracing.new_trace_id()
            )
            return QueryResult([], stats)
        t0 = time.perf_counter()
        trace_id = _tracing.current_trace_id() or _tracing.new_trace_id()
        rec = _tracing.recorder()
        col = _explain.resolve(collector)
        merger = _GlobalTopK(query.k)
        results: list[QueryResult] = []

        try:
            with _tracing.trace_scope(trace_id), rec.span(
                "shard.fanout", shards=self.shard_count
            ):
                ordered = sorted(
                    ((shard.bound(query), i) for i, shard in
                     enumerate(self.shards)),
                    key=lambda pair: (-pair[0], pair[1]),
                )
                if self.fanout == "processes":
                    results = self._run_processes(
                        ordered, query, algorithm, pulling, batch_size,
                        parallelism, floor, merger, col, trace_id,
                    )
                else:
                    run = self._make_runner(
                        query, algorithm, pulling, batch_size, parallelism,
                        floor, merger, col, trace_id,
                    )
                    workers = self._effective_workers()
                    if workers <= 1 or self.shard_count == 1:
                        outcomes = [
                            run(bound, idx) for bound, idx in ordered
                        ]
                    else:
                        pool = self._ensure_pool(workers)
                        futures = [
                            pool.submit(run, bound, idx)
                            for bound, idx in ordered
                        ]
                        outcomes = [f.result() for f in futures]
                    results = [r for r in outcomes if r is not None]
        except Exception as exc:
            if _flight.enabled:
                _flight.record_error(
                    query, f"sharded/{algorithm}", pulling, trace_id,
                    time.perf_counter() - t0, exc,
                )
            raise
        fanout_s = time.perf_counter() - t0
        shard_fanout_seconds_metric().labels(algorithm=algorithm).observe(
            fanout_s
        )

        with rec.span("shard.merge"):
            candidates = [
                (item.score, item.oid, item.x, item.y)
                for result in results
                for item in result.items
            ]
            items = rank_items(candidates, query.k)

        stats = _merge_stats(results)
        stats.wall_s = time.perf_counter() - t0
        stats.trace_id = trace_id
        for phase, seconds in rec.totals().items():
            stats.phase_times[phase] = (
                stats.phase_times.get(phase, 0.0) + seconds
            )
        if col.active:
            col.finalize(
                query, f"sharded/{algorithm}", pulling, trace_id,
                stats.wall_s, stats,
            )
        if _flight.enabled:
            _flight.maybe_record(
                query, f"sharded/{algorithm}", pulling, trace_id,
                stats.wall_s, stats=stats,
                plan=col.plan() if col.active else None,
            )
        return QueryResult(items, stats)

    def explain(
        self,
        query: PreferenceQuery,
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        floor: float = float("-inf"),
    ) -> "_explain.ExplainReport":
        """Run the query with diagnostics on; return plan + result.

        The plan's shard section lists every shard's verdict, bound, and
        floor at decision time; executed shards embed their own sub-plan.
        """
        collector = _explain.DiagnosticsCollector()
        result = self.query(
            query,
            algorithm=algorithm,
            pulling=pulling,
            batch_size=batch_size,
            parallelism=parallelism,
            floor=floor,
            collector=collector,
        )
        return _explain.ExplainReport(plan=collector.plan(), result=result)

    def query_many(
        self,
        queries,
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        max_workers: int = 4,
        dedup: bool = True,
        on_error: str = "raise",
    ) -> list[QueryResult]:
        """Batch execution through the shared executor machinery.

        Each entry runs :meth:`query` (shard fan-out included) on a
        :class:`~repro.core.executor.QueryExecutor` pool; the executor's
        dedup/failure handling applies unchanged — with
        ``on_error="return"``, a failing query (e.g. a
        :class:`~repro.errors.ShardError` from one shard) yields ``None``
        at its position without touching the rest of the batch.
        """
        from repro.core.executor import QueryExecutor

        with QueryExecutor(self, max_workers=max_workers) as executor:
            return executor.query_many(
                queries,
                algorithm=algorithm,
                pulling=pulling,
                batch_size=batch_size,
                parallelism=parallelism,
                dedup=dedup,
                on_error=on_error,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_supported(self, query: PreferenceQuery) -> None:
        n_sets = len(self.shards[0].processor.feature_trees)
        if query.c != n_sets:
            raise QueryError(
                f"query addresses {query.c} feature sets, processor has "
                f"{n_sets}"
            )
        if math.isinf(self.radius):
            return  # full replication serves every variant and radius
        if query.variant is not Variant.RANGE:
            raise QueryError(
                f"halo-replicated shards only serve the range variant "
                f"({query.variant.value} scores have unbounded spatial "
                "support); rebuild with replication='full'"
            )
        if query.radius > self.radius:
            raise QueryError(
                f"query radius {query.radius} exceeds the shard halo "
                f"radius {self.radius}; rebuild the partition with a "
                "larger radius"
            )

    def _make_runner(
        self, query, algorithm, pulling, batch_size, parallelism,
        external_floor, merger, col, trace_id,
    ):
        # One registry resolution per query, shared by every shard runner
        # (the handle itself is thread-safe).
        outcomes = shard_queries_metric()
        sink = _tracing.current_sink()

        def run(bound: float, idx: int):
            shard = self.shards[idx]
            shard_id = shard.spec.shard_id
            floor = max(merger.floor(), external_floor)
            if math.isfinite(floor) and bound < floor:
                # No object in this shard can reach the merged top-k
                # (ties at the floor are NOT pruned: bound == floor
                # still executes so oid tie-breaks see every candidate).
                outcomes.labels(algorithm=algorithm, outcome="pruned").inc()
                if col.active:
                    col.shard(shard_id, "pruned", bound, floor)
                return None
            rec = _tracing.recorder()
            sub = col.child(shard_id) if col.active else None
            shard_t0 = time.perf_counter()
            # Pool threads don't inherit the caller's contextvars —
            # re-enter the trace scope (and the caller's per-request
            # span sink, when serving) so the per-shard query and its
            # spans, logs, flight records carry the parent trace id.
            try:
                with _tracing.trace_scope(trace_id), _tracing.sink_scope(
                    sink
                ), rec.span(
                    "shard.query", shard=shard_id, bound=bound
                ):
                    result = shard.processor.query(
                        query,
                        algorithm=algorithm,
                        pulling=pulling,
                        batch_size=batch_size,
                        parallelism=parallelism,
                        floor=floor,
                        collector=sub,
                    )
            except ReproError as exc:
                outcomes.labels(algorithm=algorithm, outcome="failed").inc()
                if col.active:
                    col.shard(
                        shard_id, "failed", bound, floor,
                        elapsed_s=time.perf_counter() - shard_t0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                raise
            except Exception as exc:  # noqa: BLE001 — wrapped with context
                outcomes.labels(algorithm=algorithm, outcome="failed").inc()
                if col.active:
                    col.shard(
                        shard_id, "failed", bound, floor,
                        elapsed_s=time.perf_counter() - shard_t0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                raise ShardError(
                    shard_id, f"{type(exc).__name__}: {exc}"
                ) from exc
            merger.offer(item.score for item in result.items)
            outcomes.labels(algorithm=algorithm, outcome="executed").inc()
            if col.active:
                col.shard(
                    shard_id, "executed", bound, floor,
                    elapsed_s=time.perf_counter() - shard_t0,
                    sub=sub,
                )
            return result

        return run

    def _run_processes(
        self, ordered, query, algorithm, pulling, batch_size, parallelism,
        external_floor, merger, col, trace_id,
    ) -> list[QueryResult]:
        """Process-mode fan-out: throttled dispatch over the worker pool.

        Shards are dispatched in descending bound order with at most
        ``workers`` in flight; each dispatch re-reads the merged floor,
        so shards falling out of contention while earlier ones run are
        pruned without ever crossing the process boundary.  Completed
        payloads are folded back in completion order: metrics deltas
        into the (possibly scoped) parent registry, flight records into
        the parent ring buffer, sub-plans into the parent collector —
        the observable behavior matches thread mode exactly.
        """
        outcomes_metric = shard_queries_metric()
        runner = self._ensure_process_runner()
        workers = max(1, min(self._effective_workers(), len(ordered)))
        results: list[QueryResult] = []
        pending = list(ordered)  # (bound, idx), bound descending
        in_flight: dict = {}
        failure: Exception | None = None

        def dispatch_next() -> bool:
            while pending:
                bound, idx = pending.pop(0)
                shard_id = self.shards[idx].spec.shard_id
                floor = max(merger.floor(), external_floor)
                if math.isfinite(floor) and bound < floor:
                    # Same tie semantics as thread mode: bound == floor
                    # still executes.
                    outcomes_metric.labels(
                        algorithm=algorithm, outcome="pruned"
                    ).inc()
                    if col.active:
                        col.shard(shard_id, "pruned", bound, floor)
                    continue
                future = runner.submit(
                    shard_id, self._epoch, query, algorithm, pulling,
                    batch_size, parallelism, floor, trace_id, col.active,
                    manifest=self._manifests[idx],
                )
                in_flight[future] = (bound, shard_id, floor)
                return True
            return False

        for _ in range(workers):
            if not dispatch_next():
                break
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                bound, shard_id, floor = in_flight.pop(future)
                payload = future.result()
                # Fold observability back in even for failed shards —
                # the worker did the work; the registry must show it.
                _metrics.merge_state(payload["metrics"])
                if _flight.enabled:
                    _flight.ingest(payload["flight"], shard_id=shard_id)
                spans = payload.get("spans")
                if spans is not None:
                    _tracing.ingest(
                        spans["events"],
                        thread_names=spans["thread_names"],
                        worker_epoch=spans["epoch"],
                    )
                error = payload["error"]
                if error is not None:
                    outcomes_metric.labels(
                        algorithm=algorithm, outcome="failed"
                    ).inc()
                    if col.active:
                        col.shard(
                            shard_id, "failed", bound, floor,
                            elapsed_s=payload["elapsed_s"],
                            error=f"{error['type']}: {error['message']}",
                        )
                    if failure is None:
                        failure = unpickle_error(error, shard_id)
                    continue
                result = payload["result"]
                merger.offer(item.score for item in result.items)
                outcomes_metric.labels(
                    algorithm=algorithm, outcome="executed"
                ).inc()
                if col.active:
                    sub_plan = (
                        _explain.QueryPlan.from_dict(payload["plan"])
                        if payload["plan"] is not None
                        else None
                    )
                    col.shard(
                        shard_id, "executed", bound, floor,
                        elapsed_s=payload["elapsed_s"], sub_plan=sub_plan,
                    )
                results.append(result)
            if failure is None:
                while len(in_flight) < workers and dispatch_next():
                    pass
            # On failure: stop dispatching, drain what is in flight so
            # their metrics/flight records land, then raise.
        if failure is not None:
            raise failure
        return results

    def _effective_workers(self) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, min(self.shard_count, os.cpu_count() or 1))

    def _ensure_pool(self, workers: int) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise ShardError(-1, "sharded processor is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
            return self._pool

    def _ensure_process_runner(self) -> ProcessShardRunner:
        with self._pool_lock:
            if self._closed:
                raise ShardError(-1, "sharded processor is closed")
            if self._process_runner is None:
                self._process_runner = ProcessShardRunner(
                    self._manifests,
                    max_workers=self._effective_workers(),
                    start_method=self.start_method,
                )
            return self._process_runner


def _merge_stats(results: Sequence[QueryResult]) -> QueryStats:
    """Sum per-shard cost counters into one workload-level view."""
    stats = QueryStats()
    for result in results:
        s = result.stats
        stats.io_reads += s.io_reads
        stats.buffer_hits += s.buffer_hits
        stats.node_cache_hits += s.node_cache_hits
        stats.node_cache_misses += s.node_cache_misses
        stats.io_time_s += s.io_time_s
        stats.combinations += s.combinations
        stats.features_pulled += s.features_pulled
        stats.objects_scored += s.objects_scored
        stats.heap_pops += s.heap_pops
        stats.nodes_expanded += s.nodes_expanded
        stats.voronoi_io_reads += s.voronoi_io_reads
        stats.voronoi_cpu_s += s.voronoi_cpu_s
        stats.voronoi_io_time_s += s.voronoi_io_time_s
        for phase, seconds in s.phase_times.items():
            stats.phase_times[phase] = (
                stats.phase_times.get(phase, 0.0) + seconds
            )
    return stats
