"""Query-workload generation (Section 8.1).

"Every reported value is the average of 1,000 random queries, which are
generated in a similar way as the synthetic data and follow the same data
distribution" — query keywords are sampled from the occurrence
distribution of the keywords in each feature set.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.query import PreferenceQuery, Variant
from repro.data.synthetic import data_keyword_distribution
from repro.errors import DatasetError
from repro.model.dataset import FeatureDataset


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters shared by every query of a workload (Table 2)."""

    n_queries: int = 50
    k: int = 10
    radius: float = 0.01
    lam: float = 0.5
    keywords_per_set: int = 3
    variant: Variant = Variant.RANGE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise DatasetError("workload needs at least one query")
        if self.keywords_per_set < 1:
            raise DatasetError("need at least one query keyword per set")


def make_workload(
    feature_sets: Sequence[FeatureDataset], spec: WorkloadSpec
) -> list[PreferenceQuery]:
    """Random queries whose keywords follow the data distribution."""
    rng = random.Random(spec.seed)
    distributions = [data_keyword_distribution(fs) for fs in feature_sets]
    queries = []
    for _ in range(spec.n_queries):
        masks = []
        for dist in distributions:
            chosen: set[int] = set()
            # Sample distinct terms, weighted by data frequency; fall back
            # to uniform fill if the set's distinct terms run short.
            attempts = 0
            while len(chosen) < spec.keywords_per_set and attempts < 200:
                chosen.add(rng.choice(dist))
                attempts += 1
            mask = 0
            for term in chosen:
                mask |= 1 << term
            masks.append(mask)
        queries.append(
            PreferenceQuery(
                k=spec.k,
                radius=spec.radius,
                lam=spec.lam,
                keyword_masks=tuple(masks),
                variant=spec.variant,
            )
        )
    return queries
