"""Synthetic clustered datasets (Section 8.1, "Datasets").

The paper: "we created synthetic clustered datasets of varying size,
number of keywords and number of feature sets.  Approximately 10,000
clusters constitute each synthetic dataset.  The number of distinct
keywords is set to 256 as a default value and each feature object is
characterized by one or more keywords that are picked randomly.  The
spatial constituent of all datasets has been normalized in [0,1]x[0,1]."

At the paper's default cardinality of 100K that is ~10 members per
cluster; :func:`cluster_count_for` keeps that density at any scale so the
scaled-down benchmark runs preserve the spatial distribution.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

PAPER_CLUSTER_DENSITY = 10  # members per cluster at the paper's scale
DEFAULT_CLUSTER_SIGMA = 0.005
DEFAULT_MAX_KEYWORDS = 4
# Default seed of the *shared* cluster-center sequence.  Data objects and
# feature objects co-locate in the same clusters (hotels and restaurants
# share cities) — matching the paper's datasets, where preference queries
# are meaningful precisely because objects have features nearby.  The
# center sequence is prefix-stable: datasets with different cluster
# counts share the leading centers.
DEFAULT_SPACE_SEED = 99


def cluster_count_for(cardinality: int) -> int:
    """Cluster count preserving the paper's ~10-per-cluster density."""
    return max(1, cardinality // PAPER_CLUSTER_DENSITY)


def make_vocabulary(size: int) -> Vocabulary:
    """A synthetic vocabulary of ``size`` distinct terms."""
    if size < 1:
        raise DatasetError(f"vocabulary size must be >= 1, got {size}")
    return Vocabulary(f"term{i:04d}" for i in range(size))


def _clustered_points(
    n: int,
    rng: random.Random,
    clusters: int | None,
    sigma: float,
    space_seed: int | None,
) -> list[tuple[float, float]]:
    if n < 0:
        raise DatasetError(f"negative cardinality {n}")
    if clusters is None:
        clusters = cluster_count_for(n)
    center_rng = rng if space_seed is None else random.Random(space_seed)
    centers = [
        (center_rng.random(), center_rng.random())
        for _ in range(max(1, clusters))
    ]
    points = []
    for _ in range(n):
        cx, cy = centers[rng.randrange(len(centers))]
        x = min(1.0, max(0.0, rng.gauss(cx, sigma)))
        y = min(1.0, max(0.0, rng.gauss(cy, sigma)))
        points.append((x, y))
    return points


def synthetic_objects(
    n: int,
    seed: int = 0,
    clusters: int | None = None,
    sigma: float = DEFAULT_CLUSTER_SIGMA,
    space_seed: int | None = DEFAULT_SPACE_SEED,
) -> ObjectDataset:
    """Clustered data objects in the unit square.

    ``space_seed`` selects the shared cluster-center sequence (pass None
    for dataset-private centers).
    """
    rng = random.Random(seed)
    points = _clustered_points(n, rng, clusters, sigma, space_seed)
    return ObjectDataset(
        [DataObject(i, x, y) for i, (x, y) in enumerate(points)]
    )


def synthetic_features(
    n: int,
    vocabulary: Vocabulary | int = 256,
    seed: int = 1,
    clusters: int | None = None,
    sigma: float = DEFAULT_CLUSTER_SIGMA,
    max_keywords: int = DEFAULT_MAX_KEYWORDS,
    label: str = "",
    space_seed: int | None = DEFAULT_SPACE_SEED,
) -> FeatureDataset:
    """Clustered feature objects with random scores and keywords.

    Each feature gets 1..``max_keywords`` keywords picked uniformly from
    the vocabulary (the paper's "one or more keywords ... picked
    randomly") and a uniform quality score in [0, 1].
    """
    if isinstance(vocabulary, int):
        vocabulary = make_vocabulary(vocabulary)
    if max_keywords < 1:
        raise DatasetError(f"max_keywords must be >= 1, got {max_keywords}")
    rng = random.Random(seed)
    points = _clustered_points(n, rng, clusters, sigma, space_seed)
    vocab_ids = range(vocabulary.size)
    features = []
    for i, (x, y) in enumerate(points):
        count = rng.randint(1, min(max_keywords, vocabulary.size))
        keywords = frozenset(rng.sample(vocab_ids, count))
        features.append(
            FeatureObject(i, x, y, round(rng.random(), 6), keywords)
        )
    return FeatureDataset(features, vocabulary, label or f"synthetic-{seed}")


def synthetic_feature_sets(
    c: int,
    n: int,
    vocabulary: Vocabulary | int = 256,
    seed: int = 1,
    clusters: int | None = None,
    sigma: float = DEFAULT_CLUSTER_SIGMA,
    max_keywords: int = DEFAULT_MAX_KEYWORDS,
    space_seed: int | None = DEFAULT_SPACE_SEED,
) -> list[FeatureDataset]:
    """``c`` independent feature sets sharing one vocabulary."""
    if c < 1:
        raise DatasetError(f"need at least one feature set, got {c}")
    if isinstance(vocabulary, int):
        vocabulary = make_vocabulary(vocabulary)
    return [
        synthetic_features(
            n,
            vocabulary,
            seed=seed + 1000 * (i + 1),
            clusters=clusters,
            sigma=sigma,
            max_keywords=max_keywords,
            label=f"F{i + 1}",
            space_seed=space_seed,
        )
        for i in range(c)
    ]


def data_keyword_distribution(dataset: FeatureDataset) -> list[int]:
    """Term ids weighted by how often they occur in the dataset.

    The paper generates query keywords "in a similar way as the synthetic
    data", i.e. following the data distribution; sampling uniformly from
    this multiset does exactly that.
    """
    weighted: list[int] = []
    for feature in dataset:
        weighted.extend(feature.keywords)
    if not weighted:
        raise DatasetError("feature set has no keywords")
    return weighted
