"""Dataset-generation CLI: ``python -m repro.data``.

Generates the synthetic clustered datasets and the factual-like
real-world bundle as JSON-lines files, so experiments can run against
fixed on-disk inputs:

    python -m repro.data synthetic --objects 10000 --features 10000 \\
        --sets 2 --vocab 128 --out data/
    python -m repro.data real --scale 0.1 --out data/
"""

from __future__ import annotations

import argparse
import os

from repro.data.io import save_features, save_objects
from repro.data.realworld import real_world
from repro.data.synthetic import (
    make_vocabulary,
    synthetic_feature_sets,
    synthetic_objects,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.data",
        description="Generate STPQ benchmark datasets as JSON lines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synthetic", help="clustered synthetic datasets")
    synth.add_argument("--objects", type=int, default=10_000)
    synth.add_argument("--features", type=int, default=10_000)
    synth.add_argument("--sets", type=int, default=2, help="feature sets c")
    synth.add_argument("--vocab", type=int, default=128)
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--out", required=True, metavar="DIR")

    real = sub.add_parser("real", help="factual-like hotels/restaurants")
    real.add_argument("--scale", type=float, default=0.1)
    real.add_argument("--seed", type=int, default=7)
    real.add_argument("--out", required=True, metavar="DIR")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    if args.command == "synthetic":
        objects = synthetic_objects(args.objects, seed=args.seed)
        vocabulary = make_vocabulary(args.vocab)
        feature_sets = synthetic_feature_sets(
            args.sets, args.features, vocabulary, seed=args.seed + 1
        )
        objects_path = os.path.join(args.out, "objects.jsonl")
        save_objects(objects, objects_path)
        print(f"wrote {objects_path} ({len(objects)} objects)")
        for i, fs in enumerate(feature_sets, start=1):
            path = os.path.join(args.out, f"features_{i}.jsonl")
            save_features(fs, path)
            print(f"wrote {path} ({len(fs)} features)")
        return 0

    data = real_world(scale=args.scale, seed=args.seed)
    hotels_path = os.path.join(args.out, "hotels.jsonl")
    save_objects(data.hotels, hotels_path)
    print(f"wrote {hotels_path} ({len(data.hotels)} hotels)")
    for label, dataset in (
        ("restaurants", data.restaurants),
        ("coffeehouses", data.coffeehouses),
    ):
        path = os.path.join(args.out, f"{label}.jsonl")
        save_features(dataset, path)
        print(f"wrote {path} ({len(dataset)} {label})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
