"""Name/keyword material for the factual-like real-world generator.

The paper's real dataset came from factual.com: US hotels and restaurants
with ratings and "cuisine" keywords ("the number of distinct values of
keywords for the cuisine is around 130").  factual.com no longer exists,
so we synthesize a dataset with the same published statistics; this module
holds the vocabulary and naming material.
"""

from __future__ import annotations

# The 13 US states the paper mentions ("13 US states that are the states
# for which factual.com lists sufficient data") — the exact states are not
# named in the paper, so we pick 13 populous ones; only the *count* of
# top-level clusters matters for the data distribution.
US_STATES = [
    "California",
    "Texas",
    "Florida",
    "New York",
    "Pennsylvania",
    "Illinois",
    "Ohio",
    "Georgia",
    "North Carolina",
    "Michigan",
    "New Jersey",
    "Virginia",
    "Washington",
]

# ~130 cuisine keywords, as in the paper's crawl.  Ordered roughly by
# popularity; the generator samples them with a Zipf-like skew, which
# matches how cuisine tags are distributed in real POI data.
CUISINE_KEYWORDS = [
    "american", "pizza", "mexican", "italian", "chinese", "burgers",
    "sandwiches", "seafood", "japanese", "steak", "barbecue", "thai",
    "sushi", "indian", "greek", "french", "mediterranean", "vietnamese",
    "korean", "cajun", "breakfast", "diner", "bakery", "deli", "cafe",
    "vegetarian", "vegan", "tapas", "spanish", "german", "irish", "cuban",
    "caribbean", "soul", "southern", "tex-mex", "ramen", "noodles", "pho",
    "dim-sum", "hotpot", "salad", "soup", "wings", "subs", "bagels",
    "donuts", "pancakes", "waffles", "crepes", "gelato", "ice-cream",
    "frozen-yogurt", "smoothies", "juice", "coffee", "tea", "espresso",
    "cappuccino", "latte", "bubble-tea", "brewpub", "gastropub", "wine-bar",
    "cocktails", "buffet", "fast-food", "food-truck", "gluten-free",
    "organic", "farm-to-table", "fusion", "asian", "latin", "peruvian",
    "brazilian", "argentinian", "colombian", "ethiopian", "moroccan",
    "lebanese", "turkish", "persian", "pakistani", "bangladeshi",
    "filipino", "indonesian", "malaysian", "singaporean", "hawaiian",
    "poke", "fish-and-chips", "british", "scottish", "polish", "russian",
    "ukrainian", "hungarian", "austrian", "swiss", "belgian", "dutch",
    "scandinavian", "portuguese", "oysters", "crab", "lobster", "clams",
    "tacos", "burritos", "quesadillas", "empanadas", "falafel", "gyros",
    "kebab", "shawarma", "halal", "kosher", "curry", "tandoori", "biryani",
    "dumplings", "spring-rolls", "teriyaki", "tempura", "udon", "bistro",
    "brasserie", "trattoria", "pasta", "risotto", "paella", "churrasco",
    "rotisserie", "smokehouse", "chowder", "muffins", "croissants",
    "pastries", "macarons",
]

# Coffeehouse-flavoured subset used for the second real-like feature set
# (the running example of the paper: restaurants + coffeehouses).
COFFEE_KEYWORDS = [
    "coffee", "espresso", "cappuccino", "latte", "tea", "bubble-tea",
    "muffins", "croissants", "pastries", "donuts", "bagels", "macarons",
    "smoothies", "juice", "gelato", "ice-cream", "frozen-yogurt", "crepes",
    "waffles", "cafe", "bakery", "breakfast",
]

RESTAURANT_NAME_HEADS = [
    "Golden", "Royal", "Blue", "Silver", "Rustic", "Urban", "Old Town",
    "Corner", "Harbor", "Garden", "Sunset", "Village", "Metro", "Grand",
    "Little", "Happy", "Lucky", "Twin", "Red", "Green",
]

RESTAURANT_NAME_TAILS = [
    "Kitchen", "Grill", "Bistro", "Table", "Tavern", "House", "Cantina",
    "Trattoria", "Diner", "Eatery", "Plates", "Fork", "Spoon", "Oven",
    "Hearth", "Pantry", "Terrace", "Garden", "Room", "Spot",
]

HOTEL_NAME_HEADS = [
    "Grand", "Park", "Royal", "Comfort", "Summit", "Harbor", "Lakeside",
    "Sunset", "Palm", "Crown", "Liberty", "Union", "Capital", "Riverside",
    "Garden", "Majestic", "Pioneer", "Heritage", "Skyline", "Beacon",
]

HOTEL_NAME_TAILS = [
    "Hotel", "Inn", "Suites", "Lodge", "Resort", "Plaza", "Court",
    "Residences", "House", "Place",
]

CAFE_NAME_HEADS = [
    "Daily", "Morning", "Corner", "Velvet", "Amber", "Honey", "Maple",
    "Cozy", "Bright", "Steam", "Drip", "Whistle", "Copper", "Marble",
]

CAFE_NAME_TAILS = [
    "Coffee", "Cafe", "Roasters", "Espresso Bar", "Coffee House",
    "Brew", "Beans", "Cup", "Grind", "Perk",
]
