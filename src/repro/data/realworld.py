"""Factual-like real-world dataset generator.

The paper's real dataset (Section 8.1) was crawled from factual.com:
~25K US hotels (data objects) and ~79K restaurants (feature objects) with
ratings and ~130 distinct cuisine keywords, spread over 13 US states —
"forming just a few clusters", which is what makes range queries costlier
on the real data than on the (10,000-cluster) synthetic data.

factual.com shut down in 2020, so this module synthesizes a dataset with
the same published statistics (see DESIGN.md, Substitutions): 13 state
clusters each containing a handful of city-level sub-clusters, the
published cardinality ratio, a ~130-term cuisine vocabulary with skewed
(Zipf-like) keyword popularity, and bimodal-ish ratings as typical of
review data.  A coffeehouse feature set (the paper's running example) is
provided for multi-feature-set (c = 2) queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data import names
from repro.errors import DatasetError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

PAPER_HOTELS = 25_000
PAPER_RESTAURANTS = 79_000
DEFAULT_SCALE = 0.1  # repo default: 10x smaller than the paper's crawl
CITIES_PER_STATE = 5
CITY_SIGMA = 0.012
ZIPF_EXPONENT = 1.0


@dataclass(frozen=True, slots=True)
class RealWorldData:
    """The bundled real-like datasets."""

    hotels: ObjectDataset
    restaurants: FeatureDataset
    coffeehouses: FeatureDataset

    @property
    def feature_sets(self) -> list[FeatureDataset]:
        return [self.restaurants, self.coffeehouses]


def cuisine_vocabulary() -> Vocabulary:
    """The ~130-term cuisine vocabulary."""
    return Vocabulary(names.CUISINE_KEYWORDS)


def _state_city_centers(rng: random.Random) -> list[tuple[float, float]]:
    """13 state anchors, each with a few city sub-centers."""
    centers = []
    for _ in names.US_STATES:
        sx, sy = rng.random(), rng.random()
        for _ in range(CITIES_PER_STATE):
            cx = min(1.0, max(0.0, rng.gauss(sx, 0.05)))
            cy = min(1.0, max(0.0, rng.gauss(sy, 0.05)))
            centers.append((cx, cy))
    return centers


def _place(rng: random.Random, centers) -> tuple[float, float]:
    cx, cy = centers[rng.randrange(len(centers))]
    x = min(1.0, max(0.0, rng.gauss(cx, CITY_SIGMA)))
    y = min(1.0, max(0.0, rng.gauss(cy, CITY_SIGMA)))
    return x, y


def _zipf_weights(n: int) -> list[float]:
    return [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(n)]


def _rating(rng: random.Random) -> float:
    """Review-style rating: mostly good, a long tail of mediocre."""
    base = rng.betavariate(5.0, 2.0)
    return round(min(1.0, max(0.0, base)), 3)


def _sample_keywords(
    rng: random.Random,
    term_ids: list[int],
    weights: list[float],
    max_terms: int,
) -> frozenset[int]:
    count = rng.randint(1, max_terms)
    chosen = set()
    while len(chosen) < count:
        chosen.add(rng.choices(term_ids, weights=weights, k=1)[0])
    return frozenset(chosen)


def _compose_name(rng: random.Random, heads, tails) -> str:
    return f"{rng.choice(heads)} {rng.choice(tails)}"


def real_world(
    scale: float = DEFAULT_SCALE, seed: int = 7
) -> RealWorldData:
    """Generate the full real-like bundle at a fractional scale.

    ``scale = 1.0`` reproduces the paper's cardinalities (25K hotels /
    79K restaurants); the repo default is 0.1.
    """
    if scale <= 0.0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n_hotels = max(1, round(PAPER_HOTELS * scale))
    n_restaurants = max(1, round(PAPER_RESTAURANTS * scale))
    n_cafes = max(1, round(n_restaurants * 0.4))

    rng = random.Random(seed)
    centers = _state_city_centers(rng)
    vocab = cuisine_vocabulary()

    hotels = []
    for i in range(n_hotels):
        x, y = _place(rng, centers)
        name = _compose_name(rng, names.HOTEL_NAME_HEADS, names.HOTEL_NAME_TAILS)
        hotels.append(DataObject(i, x, y, name))

    cuisine_ids = [vocab.require_id(t) for t in names.CUISINE_KEYWORDS]
    cuisine_weights = _zipf_weights(len(cuisine_ids))
    restaurants = []
    for i in range(n_restaurants):
        x, y = _place(rng, centers)
        keywords = _sample_keywords(rng, cuisine_ids, cuisine_weights, 3)
        name = _compose_name(
            rng, names.RESTAURANT_NAME_HEADS, names.RESTAURANT_NAME_TAILS
        )
        restaurants.append(FeatureObject(i, x, y, _rating(rng), keywords, name))

    coffee_ids = [vocab.require_id(t) for t in names.COFFEE_KEYWORDS]
    coffee_weights = _zipf_weights(len(coffee_ids))
    cafes = []
    for i in range(n_cafes):
        x, y = _place(rng, centers)
        keywords = _sample_keywords(rng, coffee_ids, coffee_weights, 3)
        name = _compose_name(rng, names.CAFE_NAME_HEADS, names.CAFE_NAME_TAILS)
        cafes.append(FeatureObject(i, x, y, _rating(rng), keywords, name))

    return RealWorldData(
        hotels=ObjectDataset(hotels),
        restaurants=FeatureDataset(restaurants, vocab, "restaurants"),
        coffeehouses=FeatureDataset(cafes, vocab, "coffeehouses"),
    )
