"""``python -m repro.data`` entry point."""

from repro.data.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
