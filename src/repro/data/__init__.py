"""Dataset generators, workload generation and persistence."""

from repro.data.io import load_features, load_objects, save_features, save_objects
from repro.data.realworld import RealWorldData, cuisine_vocabulary, real_world
from repro.data.sharded import load_shards, save_shards
from repro.data.synthetic import (
    cluster_count_for,
    data_keyword_distribution,
    make_vocabulary,
    synthetic_feature_sets,
    synthetic_features,
    synthetic_objects,
)
from repro.data.workload import WorkloadSpec, make_workload

__all__ = [
    "RealWorldData",
    "WorkloadSpec",
    "cluster_count_for",
    "cuisine_vocabulary",
    "data_keyword_distribution",
    "load_features",
    "load_objects",
    "load_shards",
    "make_vocabulary",
    "make_workload",
    "real_world",
    "save_features",
    "save_objects",
    "save_shards",
    "synthetic_feature_sets",
    "synthetic_features",
    "synthetic_objects",
]
