"""Persistence for shard partitions: one directory, one manifest.

Layout written by :func:`save_shards`::

    <dir>/manifest.json                  # partition geometry + file map
    <dir>/shard-0/objects.jsonl          # repro.data.io JSON-lines format
    <dir>/shard-0/features-0.jsonl
    <dir>/shard-0/features-1.jsonl
    <dir>/shard-1/...

The manifest records each shard's assignment bbox and halo radius (the
two inputs :func:`~repro.shard.partitioner.partition` derived them from),
so :func:`load_shards` reconstructs :class:`~repro.shard.ShardSpec`s that
are byte-equivalent to the originals and can be fed straight into
:meth:`~repro.shard.ShardedQueryProcessor.from_specs` — partition once,
rebuild indexes anywhere.
"""

from __future__ import annotations

import json
import math
import os

from repro.data.io import (
    load_features,
    load_objects,
    save_features,
    save_objects,
)
from repro.errors import DatasetError
from repro.geometry.rect import Rect
from repro.shard.partitioner import ShardSpec

MANIFEST_NAME = "manifest.json"
#: Bumped when the on-disk layout changes incompatibly.
MANIFEST_VERSION = 1


def save_shards(specs: list[ShardSpec], directory: str) -> str:
    """Write a shard partition to ``directory``; returns the manifest path.

    ``inf`` halo radii (full replication) are stored as ``null`` — JSON
    has no infinity literal.
    """
    if not specs:
        raise DatasetError("no shard specs to save")
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "type": "meta",
        "kind": "shards",
        "version": MANIFEST_VERSION,
        "shards": [],
    }
    for spec in specs:
        shard_dir = os.path.join(directory, f"shard-{spec.shard_id}")
        os.makedirs(shard_dir, exist_ok=True)
        objects_file = os.path.join(shard_dir, "objects.jsonl")
        save_objects(spec.objects, objects_file)
        feature_files = []
        for i, feature_set in enumerate(spec.feature_sets):
            feature_file = os.path.join(shard_dir, f"features-{i}.jsonl")
            save_features(feature_set, feature_file)
            feature_files.append(os.path.relpath(feature_file, directory))
        manifest["shards"].append(
            {
                "shard_id": spec.shard_id,
                "bbox": [list(spec.bbox.low), list(spec.bbox.high)],
                "radius": None if math.isinf(spec.radius) else spec.radius,
                "objects": os.path.relpath(objects_file, directory),
                "features": feature_files,
                "counts": {
                    "objects": spec.n_objects,
                    "features": [len(fs) for fs in spec.feature_sets],
                },
            }
        )
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return manifest_path


def load_shards(directory: str) -> list[ShardSpec]:
    """Read a partition written by :func:`save_shards`.

    Validates the manifest's version and per-shard record counts against
    the data files, so a truncated or hand-edited partition fails loudly
    instead of silently dropping objects.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise DatasetError(f"no shard manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as fh:
        try:
            manifest = json.load(fh)
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"{manifest_path}: malformed JSON ({exc})"
            ) from exc
    if manifest.get("kind") != "shards":
        raise DatasetError(f"{manifest_path}: not a shard manifest")
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise DatasetError(
            f"{manifest_path}: unsupported manifest version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    specs: list[ShardSpec] = []
    for entry in manifest.get("shards", []):
        low, high = entry["bbox"]
        radius = entry["radius"]
        objects = load_objects(os.path.join(directory, entry["objects"]))
        feature_sets = [
            load_features(os.path.join(directory, rel))
            for rel in entry["features"]
        ]
        counts = entry.get("counts", {})
        if counts:
            if counts.get("objects") != len(objects):
                raise DatasetError(
                    f"shard {entry['shard_id']}: manifest says "
                    f"{counts.get('objects')} objects, file has "
                    f"{len(objects)}"
                )
            expected = counts.get("features", [])
            actual = [len(fs) for fs in feature_sets]
            if expected != actual:
                raise DatasetError(
                    f"shard {entry['shard_id']}: manifest says feature "
                    f"counts {expected}, files have {actual}"
                )
        specs.append(
            ShardSpec(
                shard_id=entry["shard_id"],
                bbox=Rect(tuple(low), tuple(high)),
                radius=math.inf if radius is None else float(radius),
                objects=objects,
                feature_sets=feature_sets,
            )
        )
    if not specs:
        raise DatasetError(f"{manifest_path}: manifest lists no shards")
    return specs
