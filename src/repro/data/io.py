"""Dataset persistence: JSON-lines save/load for objects and features.

Format (one JSON object per line)::

    {"type": "meta", "kind": "features", "label": ..., "vocabulary": [...]}
    {"id": 0, "x": 0.1, "y": 0.2, "score": 0.8, "kw": [3, 17], "name": "..."}

Data-object files omit ``score``/``kw``.  Plain text keeps the files
diffable and the loader dependency-free.
"""

from __future__ import annotations

import json
import os

from repro.errors import DatasetError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary


def save_objects(dataset: ObjectDataset, path: str) -> None:
    """Write a data-object dataset as JSON lines."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "meta", "kind": "objects"}) + "\n")
        for o in dataset:
            record = {"id": o.oid, "x": o.x, "y": o.y}
            if o.name:
                record["name"] = o.name
            fh.write(json.dumps(record) + "\n")


def load_objects(path: str) -> ObjectDataset:
    """Read a data-object dataset written by :func:`save_objects`."""
    meta, records = _read(path)
    if meta.get("kind") != "objects":
        raise DatasetError(f"{path}: not a data-object file")
    return ObjectDataset(
        [
            DataObject(r["id"], r["x"], r["y"], r.get("name", ""))
            for r in records
        ]
    )


def save_features(dataset: FeatureDataset, path: str) -> None:
    """Write a feature dataset (including its vocabulary) as JSON lines."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "meta",
                    "kind": "features",
                    "label": dataset.label,
                    "vocabulary": list(dataset.vocabulary),
                }
            )
            + "\n"
        )
        for f in dataset:
            record = {
                "id": f.fid,
                "x": f.x,
                "y": f.y,
                "score": f.score,
                "kw": sorted(f.keywords),
            }
            if f.name:
                record["name"] = f.name
            fh.write(json.dumps(record) + "\n")


def load_features(path: str) -> FeatureDataset:
    """Read a feature dataset written by :func:`save_features`."""
    meta, records = _read(path)
    if meta.get("kind") != "features":
        raise DatasetError(f"{path}: not a feature file")
    vocab = Vocabulary(meta.get("vocabulary", []))
    features = [
        FeatureObject(
            r["id"],
            r["x"],
            r["y"],
            r["score"],
            frozenset(r.get("kw", [])),
            r.get("name", ""),
        )
        for r in records
    ]
    return FeatureDataset(features, vocab, meta.get("label", ""))


def _read(path: str) -> tuple[dict, list[dict]]:
    if not os.path.exists(path):
        raise DatasetError(f"no such dataset file: {path}")
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise DatasetError(f"{path}: empty dataset file")
    try:
        meta = json.loads(lines[0])
        records = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: malformed JSON ({exc})") from exc
    if meta.get("type") != "meta":
        raise DatasetError(f"{path}: first line is not a meta record")
    return meta, records
