"""Thread-safe metrics registry: counters, gauges, latency histograms.

The paper evaluates every algorithm through cost anatomy — I/O vs. CPU
time, combinations examined, feature objects pulled (Section 8.1).  This
module provides the runtime counterpart: a process-wide
:class:`MetricsRegistry` of *labeled* metric families that the query
stack updates as it runs and the exporters in :mod:`repro.obs.export`
render (Prometheus text exposition, JSON snapshots).

Three metric types, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (queries served,
  features pulled per feature set, combinations examined);
* :class:`Gauge` — point-in-time values (cache sizes, hit rates);
* :class:`Histogram` — log-bucketed distributions with cumulative bucket
  counts, used for query/batch latencies.  Buckets form a geometric
  series (default 10 µs … ~84 s, factor 2) so one histogram spans the
  microsecond-to-minute range the workloads produce; ``quantile`` gives
  interpolated p50/p95/p99 summaries from the bucket counts.

Label handling follows the Prometheus convention: a *family* is declared
once with its label names and ``labels(**values)`` returns (creating on
first use) the child series for one label combination.  Families with no
labels proxy operations straight to their single child, so
``registry.counter("x").inc()`` works.

All mutation goes through per-family locks, so the executor's worker
threads may update shared series concurrently; registration goes through
the registry lock and is idempotent (re-declaring a family with the same
type and labels returns the existing one, mismatches raise
:class:`~repro.errors.ReproError`).

A process-wide default registry is available via :func:`registry`; the
instrumentation in ``repro.core`` records there.  ``registry().reset()``
zeroes every series while keeping the registrations (used by
``QueryProcessor.reset_stats`` and the tests).
"""

from __future__ import annotations

import logging
import math
import threading
import time
from bisect import bisect_left
from collections.abc import Iterable, Sequence

import repro.obs.tracing as _tracing
from repro.errors import ReproError

logger = logging.getLogger(__name__)

#: Module flag, read on the histogram hot path.  When on, each
#: observation made inside an active trace scope stamps its bucket with
#: an *exemplar* — ``(value, trace_id, unix_ts)`` — so a p99 bucket
#: resolves to a concrete query (join the trace id against the flight
#: recorder, Chrome-trace spans, and profiler captures).  Mutate only
#: via :func:`set_exemplars`.
exemplars_enabled = False


def set_exemplars(on: bool) -> bool:
    """Turn exemplar capture on/off; returns the previous flag."""
    global exemplars_enabled
    previous = exemplars_enabled
    exemplars_enabled = bool(on)
    return previous


class enabled_exemplars:
    """Context manager enabling exemplar capture for a block (tests)."""

    def __enter__(self) -> None:
        self._previous = set_exemplars(True)

    def __exit__(self, *exc) -> bool:
        set_exemplars(self._previous)
        return False

#: Default latency buckets: geometric series, 10 µs to ~84 s (factor 2).
#: Log-spaced buckets keep relative quantile error bounded by the factor.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-5 * 2.0**i for i in range(24)
)


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**i`` for i < count."""
    if start <= 0.0:
        raise ReproError(f"bucket start must be > 0, got {start}")
    if factor <= 1.0:
        raise ReproError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise ReproError(f"bucket count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


def quantile_from_counts(
    buckets: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Interpolated q-quantile from per-bucket (non-cumulative) counts.

    The shared reconstruction rule behind :meth:`Histogram.quantile` and
    the windowed percentiles in :mod:`repro.obs.timeseries` (which apply
    it to bucket-count *deltas* between two snapshots).  Semantics match
    Prometheus' ``histogram_quantile``; see :meth:`Histogram.quantile`
    for the edge cases.
    """
    if not 0.0 < q <= 1.0:
        raise ReproError(f"quantile must be in (0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank:
            if i >= len(buckets):  # +Inf bucket
                return buckets[-1] if buckets else math.inf
            upper = buckets[i]
            lower = buckets[i - 1] if i > 0 else 0.0
            inside = rank - (seen - c)
            return lower + (upper - lower) * (inside / c)
    return buckets[-1] if buckets else math.inf


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ReproError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ReproError(f"metric name may not start with a digit: {name!r}")


# ----------------------------------------------------------------------
# series (children)
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing total for one label combination."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A point-in-time value for one label combination."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Cumulative-bucket histogram for one label combination.

    ``buckets`` are the finite upper bounds (``le`` semantics, value
    counted in the first bucket with ``value <= bound``); an implicit
    ``+Inf`` bucket catches the rest, exactly as Prometheus does.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count", "_exemplars")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]) -> None:
        self._lock = lock
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        #: Per-bucket last exemplar, allocated lazily on first capture so
        #: the common exemplars-off histogram costs no extra memory.
        self._exemplars: list[tuple | None] | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
        if exemplars_enabled:
            trace_id = _tracing.current_trace_id()
            if trace_id is not None:
                with self._lock:
                    if self._exemplars is None:
                        self._exemplars = [None] * len(self._counts)
                    self._exemplars[idx] = (value, trace_id, time.time())

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts aligned with ``buckets`` + the +Inf bucket."""
        counts = self.bucket_counts()
        total = 0
        out = []
        for c in counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (0 < q <= 1) from the bucket counts.

        Uses linear interpolation inside the target bucket (Prometheus'
        ``histogram_quantile`` rule).  Edge cases, matching Prometheus:

        * no observations → ``0.0`` (there is no data to interpolate);
        * the quantile falls in the implicit ``+Inf`` bucket → the top
          *finite* bucket bound is returned (``+Inf`` itself would be
          useless for alerting), or ``math.inf`` when the histogram was
          declared with no finite buckets at all.  This means quantiles
          are *clipped* at the largest finite bound: observations beyond
          it are known to exist (``count``/``sum`` still include them)
          but their magnitude is unrepresentable.  Size buckets so the
          expected range is covered (see ``DEFAULT_LATENCY_BUCKETS``).
        """
        return quantile_from_counts(self.buckets, self.bucket_counts(), q)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def exemplars(self) -> list[tuple[int, float, str, float]]:
        """Captured exemplars: ``(bucket_index, value, trace_id, ts)``.

        One entry per bucket at most (the latest observation wins);
        empty unless :data:`exemplars_enabled` was on during observes.
        """
        with self._lock:
            if self._exemplars is None:
                return []
            return [
                (i, value, trace_id, ts)
                for i, ex in enumerate(self._exemplars)
                if ex is not None
                for value, trace_id, ts in (ex,)
            ]

    def _reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._exemplars = None

    def _merge(self, counts: Sequence[int], sum_: float, count: int) -> None:
        """Fold another histogram's (same-bucket) state into this one.

        Used by :func:`merge_state` to replay observations recorded in a
        worker process; both sides must share the bucket layout.
        """
        if len(counts) != len(self._counts):
            raise ReproError(
                f"histogram merge bucket mismatch: {len(counts)} vs "
                f"{len(self._counts)}"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += sum_
            self._count += count

    def _merge_exemplars(self, exemplars: Sequence[tuple]) -> None:
        """Adopt worker-captured exemplars (newest timestamp wins)."""
        with self._lock:
            for idx, value, trace_id, ts in exemplars:
                if not 0 <= idx < len(self._counts):
                    continue
                if self._exemplars is None:
                    self._exemplars = [None] * len(self._counts)
                current = self._exemplars[idx]
                if current is None or ts >= current[2]:
                    self._exemplars[idx] = (value, trace_id, ts)


_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------
class MetricFamily:
    """A named metric with fixed label names and one child per label set."""

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        child_type: type,
        **child_kwargs,
    ) -> None:
        _validate_name(name)
        for label in labelnames:
            _validate_name(label)
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.child_type = child_type
        self._child_kwargs = child_kwargs
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = child_type(self._lock, **child_kwargs)

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES[self.child_type]

    def labels(self, **labelvalues: str):
        """The child series for one label combination (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise ReproError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, self.child_type(self._lock, **self._child_kwargs)
                )
        return child

    def series(self) -> Iterable[tuple[tuple[str, ...], object]]:
        """(label values, child) pairs, sorted for stable rendering."""
        with self._lock:
            items = list(self._children.items())
        return sorted(items, key=lambda kv: kv[0])

    def _reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child._reset()

    # Unlabeled families proxy to their single child so e.g.
    # ``registry.counter("x").inc()`` works without a labels() call.
    def _sole_child(self):
        if self.labelnames:
            raise ReproError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    @property
    def value(self) -> float:
        return self._sole_child().value

    def quantile(self, q: float) -> float:
        return self._sole_child().quantile(q)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of metric families (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        child_type: type,
        **child_kwargs,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    existing.child_type is not child_type
                    or existing.labelnames != tuple(labelnames)
                ):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name} with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            family = MetricFamily(
                name, help_text, labelnames, child_type, **child_kwargs
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._register(name, help_text, labelnames, Counter)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._register(name, help_text, labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        """Declare (or fetch) a histogram family (default latency buckets)."""
        if buckets is not None:
            buckets = tuple(buckets)
            if not buckets or any(
                b <= a for a, b in zip(buckets, buckets[1:])
            ):
                raise ReproError(
                    "histogram buckets must be non-empty and strictly "
                    f"increasing, got {buckets}"
                )
        else:
            buckets = DEFAULT_LATENCY_BUCKETS
        return self._register(
            name, help_text, labelnames, Histogram, buckets=buckets
        )

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name (stable export order)."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self, names: Iterable[str] | None = None) -> int:
        """Zero series; registrations survive.  Returns #families reset.

        With ``names`` given, only those families are reset (missing
        names are ignored) — used by owners that must not clobber
        unrelated instrumentation, e.g. the sharded processor resetting
        only ``repro_shard_*``.  Without ``names``, every family is
        reset.
        """
        if names is None:
            families = self.families()
        else:
            with self._lock:
                families = [
                    self._families[n] for n in names if n in self._families
                ]
        for family in families:
            family._reset()
        if families and logger.isEnabledFor(logging.DEBUG):
            logger.debug("reset %d metric families", len(families))
        return len(families)

    def unregister(self, name: str) -> bool:
        """Drop a family entirely (tests); True when it existed."""
        with self._lock:
            return self._families.pop(name, None) is not None


#: Process-wide default registry used by the built-in instrumentation.
_DEFAULT_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one.

    Only call sites that resolve ``registry()`` *lazily* (the shard
    layer, the exporters, new instrumentation) follow the swap — module
    handles bound at import time (e.g. ``repro.core.processor``'s
    counters) keep writing to the registry that was current when their
    module was imported.  Intended for test-scoped registries; see
    :class:`scoped_registry`.
    """
    global _DEFAULT_REGISTRY
    if not isinstance(new, MetricsRegistry):
        raise ReproError(
            f"set_registry expects a MetricsRegistry, got {type(new).__name__}"
        )
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = new
    return previous


class scoped_registry:
    """Context manager swapping in a fresh (or given) default registry.

    ::

        with metrics.scoped_registry() as reg:
            sharded.query(q)          # shard metrics land in ``reg``
            assert reg.get("repro_shard_queries") is not None
    """

    def __init__(self, reg: MetricsRegistry | None = None) -> None:
        self.registry = reg if reg is not None else MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc) -> bool:
        assert self._previous is not None
        set_registry(self._previous)
        return False


# ----------------------------------------------------------------------
# cross-process state transfer
# ----------------------------------------------------------------------
# The process-mode shard fan-out (repro.shard.process_runner) runs each
# per-shard query in a worker process whose registry the parent cannot
# see.  The worker snapshots its registry around the query, diffs the two
# snapshots, and ships the *delta* back over the result channel; the
# parent replays it into its own (current default) registry, so counter
# deltas and EXPLAIN plans reconcile exactly as in thread mode.  Only
# counters and histograms travel — gauges are point-in-time values of
# the process that set them and would be meaningless merged.

def snapshot_state(reg: MetricsRegistry | None = None) -> dict:
    """A picklable snapshot of every counter/histogram series."""
    reg = reg if reg is not None else registry()
    counters = []
    histograms = []
    for family in reg.families():
        if family.type_name == "counter":
            counters.append((
                family.name,
                family.help,
                family.labelnames,
                [(lv, child.value) for lv, child in family.series()],
            ))
        elif family.type_name == "histogram":
            histograms.append((
                family.name,
                family.help,
                family.labelnames,
                family._child_kwargs["buckets"],
                [
                    (
                        lv,
                        (
                            child.bucket_counts(),
                            child.sum,
                            child.count,
                            child.exemplars(),
                        ),
                    )
                    for lv, child in family.series()
                ],
            ))
    return {"counters": counters, "histograms": histograms}


def diff_state(before: dict, after: dict) -> dict:
    """The per-series delta between two :func:`snapshot_state` results.

    Series absent from ``before`` contribute their full ``after`` value;
    zero-delta series are dropped, so a typical per-query delta is tiny.
    """
    before_counters = {
        (name, lv): value
        for name, _, _, series in before["counters"]
        for lv, value in series
    }
    counters = []
    for name, help_text, labelnames, series in after["counters"]:
        deltas = []
        for lv, value in series:
            delta = value - before_counters.get((name, lv), 0.0)
            if delta:
                deltas.append((lv, delta))
        if deltas:
            counters.append((name, help_text, labelnames, deltas))
    before_hist = {
        (name, lv): state
        for name, _, _, _, series in before["histograms"]
        for lv, state in series
    }
    histograms = []
    for name, help_text, labelnames, buckets, series in after["histograms"]:
        deltas = []
        for lv, state in series:
            counts, sum_, count = state[0], state[1], state[2]
            exemplars = list(state[3]) if len(state) > 3 else []
            prev = before_hist.get((name, lv))
            if prev is not None:
                prev_counts, prev_sum, prev_count = prev[0], prev[1], prev[2]
                prev_ex = {
                    (e[0], e[1], e[2], e[3]) for e in
                    (prev[3] if len(prev) > 3 else [])
                }
                counts = [c - p for c, p in zip(counts, prev_counts)]
                sum_ = sum_ - prev_sum
                count = count - prev_count
                exemplars = [
                    e for e in exemplars if tuple(e) not in prev_ex
                ]
            if count:
                deltas.append((lv, (counts, sum_, count, exemplars)))
        if deltas:
            histograms.append((name, help_text, labelnames, buckets, deltas))
    return {"counters": counters, "histograms": histograms}


def merge_state(delta: dict, reg: MetricsRegistry | None = None) -> None:
    """Replay a :func:`diff_state` delta into ``reg`` (default registry).

    Families and series are registered on demand with the help text,
    label names, and bucket layout carried in the delta, so merging into
    a fresh (e.g. test-scoped) registry just works.
    """
    reg = reg if reg is not None else registry()
    for name, help_text, labelnames, series in delta["counters"]:
        family = reg.counter(name, help_text, labelnames)
        for lv, value in series:
            family.labels(**dict(zip(labelnames, lv))).inc(value)
    for name, help_text, labelnames, buckets, series in delta["histograms"]:
        family = reg.histogram(name, help_text, labelnames, buckets=buckets)
        for lv, state in series:
            child = family.labels(**dict(zip(labelnames, lv)))
            child._merge(state[0], state[1], state[2])
            if len(state) > 3 and state[3]:
                child._merge_exemplars(state[3])
