"""Declarative SLOs: error budgets and multi-window burn-rate alerts.

An SLO states an *objective* — "99.5% of queries answer within 100 ms
over the accounting window".  This module evaluates such objectives
against a :class:`~repro.obs.timeseries.TimeSeriesRing` and produces the
same machine-readable verdict shape the perf sentinel
(:mod:`repro.obs.regress`) emits, so CI, ``python -m repro.obs slo``,
and the future serving layer share one gate.

Two SLO kinds cover the workloads the engine runs today:

* :class:`LatencySLO` — an observation is *good* when it lands in a
  histogram bucket whose upper bound is <= the threshold.  The
  threshold therefore snaps to a bucket boundary (log-bucket factor 2
  by default); :meth:`LatencySLO.effective_threshold` reports the bound
  actually enforced so the verdict is honest about the rounding.
* :class:`AvailabilitySLO` — good/bad from a pair of counters
  (total vs. bad events, e.g. queries vs. executor failures).

Burn rate follows the SRE-workbook definition: the rate at which the
error budget is being consumed, normalized so ``1.0`` means "exactly on
budget" — ``burn = (bad/total) / (1 - objective)``.  An alert pairs a
long and a short window and fires only when **both** exceed the factor:
the long window proves the burn is sustained, the short window proves
it is *still* happening (fast reset once the incident ends).  The
default pairs are scaled to the ring's 10-minute retention rather than
the workbook's 1 h/6 h pairs; override per-alert in ``SLO.json``.

``SLO.json`` at the repo root commits the defaults; :func:`load_slos`
parses it and :func:`evaluate_slos` turns a ring into verdicts.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.obs.timeseries import TimeSeriesRing


@dataclass(frozen=True, slots=True)
class BurnRateAlert:
    """A (long, short) window pair with a burn-rate firing factor."""

    name: str
    long_window_s: float
    short_window_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ReproError(f"alert windows must be > 0: {self}")
        if self.short_window_s > self.long_window_s:
            raise ReproError(
                f"alert short window exceeds long window: {self}"
            )
        if self.factor <= 0:
            raise ReproError(f"alert factor must be > 0: {self}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BurnRateAlert":
        return cls(
            name=str(d["name"]),
            long_window_s=float(d["long_window_s"]),
            short_window_s=float(d["short_window_s"]),
            factor=float(d["factor"]),
        )


#: Default alert pairs, scaled to the ring's 10-minute retention.  The
#: factors mirror the SRE-workbook multi-window policy (a fast burn that
#: would exhaust the budget in ~1/14th of the accounting window pages;
#: a slower sustained burn tickets).
DEFAULT_ALERTS: tuple[BurnRateAlert, ...] = (
    BurnRateAlert("fast_burn", long_window_s=60.0, short_window_s=15.0,
                  factor=14.4),
    BurnRateAlert("slow_burn", long_window_s=300.0, short_window_s=60.0,
                  factor=6.0),
)


class SLO:
    """Base: a named objective over good/bad events in a window."""

    kind = "base"

    def __init__(
        self,
        name: str,
        objective: float,
        description: str = "",
        window_s: float = 300.0,
        alerts: tuple[BurnRateAlert, ...] = DEFAULT_ALERTS,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ReproError(
                f"objective must be in (0, 1), got {objective}"
            )
        if window_s <= 0:
            raise ReproError(f"window must be > 0, got {window_s}")
        self.name = name
        self.objective = objective
        self.description = description
        self.window_s = window_s
        self.alerts = tuple(alerts)

    # subclasses implement: (good, bad, total) counts inside the window
    def counts(
        self, ring: TimeSeriesRing, window_s: float
    ) -> tuple[float, float, float]:
        raise NotImplementedError

    def burn_rate(self, ring: TimeSeriesRing, window_s: float) -> float:
        """Error-budget consumption rate over a window (1.0 = on budget)."""
        _, bad, total = self.counts(ring, window_s)
        if total <= 0:
            return 0.0
        return (bad / total) / (1.0 - self.objective)

    def evaluate(self, ring: TimeSeriesRing) -> dict:
        """Machine-readable verdict: budget accounting + alert states."""
        good, bad, total = self.counts(ring, self.window_s)
        budget_total = (1.0 - self.objective) * total
        consumed_fraction = (
            bad / budget_total if budget_total > 0
            else (math.inf if bad > 0 else 0.0)
        )
        alerts = []
        firing = False
        for alert in self.alerts:
            long_burn = self.burn_rate(ring, alert.long_window_s)
            short_burn = self.burn_rate(ring, alert.short_window_s)
            is_firing = (
                long_burn >= alert.factor and short_burn >= alert.factor
            )
            firing = firing or is_firing
            alerts.append({
                **alert.to_dict(),
                "long_burn_rate": long_burn,
                "short_burn_rate": short_burn,
                "firing": is_firing,
            })
        exhausted = bad > budget_total
        verdict = {
            "slo": self.name,
            "kind": self.kind,
            "description": self.description,
            "objective": self.objective,
            "window_s": self.window_s,
            "total": total,
            "good": good,
            "bad": bad,
            "error_budget": {
                "total": budget_total,
                "consumed": bad,
                "remaining": budget_total - bad,
                "consumed_fraction": consumed_fraction,
                "exhausted": exhausted,
            },
            "alerts": alerts,
            "firing": firing,
            "ok": not exhausted and not firing,
        }
        return verdict

    def _base_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "description": self.description,
            "window_s": self.window_s,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def to_dict(self) -> dict:
        raise NotImplementedError


class LatencySLO(SLO):
    """Fraction of histogram observations at or under a threshold.

    "Good" is decided from bucket counts, so the effective threshold is
    the largest bucket upper bound <= the requested one.
    """

    kind = "latency"

    def __init__(
        self,
        name: str,
        objective: float,
        metric: str,
        threshold_s: float,
        labels: dict | None = None,
        **kwargs,
    ) -> None:
        super().__init__(name, objective, **kwargs)
        if threshold_s <= 0:
            raise ReproError(f"threshold must be > 0, got {threshold_s}")
        self.metric = metric
        self.threshold_s = threshold_s
        self.labels = dict(labels) if labels else None

    def effective_threshold(self, ring: TimeSeriesRing) -> float | None:
        """The bucket bound actually enforced (None before any sample)."""
        buckets = ring.buckets(self.metric)
        if not buckets:
            return None
        idx = bisect_right(buckets, self.threshold_s)
        return buckets[idx - 1] if idx > 0 else 0.0

    def counts(
        self, ring: TimeSeriesRing, window_s: float
    ) -> tuple[float, float, float]:
        buckets = ring.buckets(self.metric)
        counts, _, total = ring.window_hist(
            self.metric, window_s, self.labels
        )
        if not buckets or not total:
            return 0.0, 0.0, float(total)
        idx = bisect_right(buckets, self.threshold_s)
        good = float(sum(counts[:idx]))
        return good, float(total) - good, float(total)

    def evaluate(self, ring: TimeSeriesRing) -> dict:
        verdict = super().evaluate(ring)
        verdict["metric"] = self.metric
        verdict["threshold_s"] = self.threshold_s
        verdict["effective_threshold_s"] = self.effective_threshold(ring)
        if self.labels:
            verdict["labels"] = dict(self.labels)
        return verdict

    def to_dict(self) -> dict:
        d = self._base_dict()
        d.update({"metric": self.metric, "threshold_s": self.threshold_s})
        if self.labels:
            d["labels"] = dict(self.labels)
        return d


class AvailabilitySLO(SLO):
    """Fraction of total-counter events not matched by a bad counter."""

    kind = "availability"

    def __init__(
        self,
        name: str,
        objective: float,
        total_metric: str,
        bad_metric: str,
        labels: dict | None = None,
        **kwargs,
    ) -> None:
        super().__init__(name, objective, **kwargs)
        self.total_metric = total_metric
        self.bad_metric = bad_metric
        self.labels = dict(labels) if labels else None

    def counts(
        self, ring: TimeSeriesRing, window_s: float
    ) -> tuple[float, float, float]:
        total = ring.delta(self.total_metric, window_s, self.labels)
        bad = min(ring.delta(self.bad_metric, window_s, self.labels), total)
        return total - bad, bad, total

    def evaluate(self, ring: TimeSeriesRing) -> dict:
        verdict = super().evaluate(ring)
        verdict["total_metric"] = self.total_metric
        verdict["bad_metric"] = self.bad_metric
        if self.labels:
            verdict["labels"] = dict(self.labels)
        return verdict

    def to_dict(self) -> dict:
        d = self._base_dict()
        d.update({
            "total_metric": self.total_metric,
            "bad_metric": self.bad_metric,
        })
        if self.labels:
            d["labels"] = dict(self.labels)
        return d


_KINDS = {"latency": LatencySLO, "availability": AvailabilitySLO}


def slo_from_dict(d: dict) -> SLO:
    """Rebuild an SLO from its ``to_dict`` / ``SLO.json`` form."""
    kind = d.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise ReproError(
            f"unknown SLO kind {kind!r} (expected one of {sorted(_KINDS)})"
        )
    common = {
        "name": str(d["name"]),
        "objective": float(d["objective"]),
        "description": str(d.get("description", "")),
        "window_s": float(d.get("window_s", 300.0)),
        "alerts": tuple(
            BurnRateAlert.from_dict(a) for a in d["alerts"]
        ) if "alerts" in d else DEFAULT_ALERTS,
    }
    if cls is LatencySLO:
        return LatencySLO(
            metric=str(d["metric"]),
            threshold_s=float(d["threshold_s"]),
            labels=d.get("labels"),
            **common,
        )
    return AvailabilitySLO(
        total_metric=str(d["total_metric"]),
        bad_metric=str(d["bad_metric"]),
        labels=d.get("labels"),
        **common,
    )


def default_slos() -> list[SLO]:
    """The engine's built-in objectives (mirrored in ``SLO.json``)."""
    return [
        LatencySLO(
            name="query_latency_p95_100ms",
            objective=0.95,
            metric="repro_query_seconds",
            threshold_s=0.1,
            description="95% of queries answer within ~100ms "
                        "(bucket-snapped) over the accounting window.",
        ),
        AvailabilitySLO(
            name="query_availability",
            objective=0.999,
            total_metric="repro_queries_total",
            bad_metric="repro_executor_failures_total",
            description="99.9% of queries complete without an executor "
                        "failure.",
        ),
        LatencySLO(
            name="serve_latency_p99_100ms",
            objective=0.99,
            metric="repro_serve_request_seconds",
            threshold_s=0.1,
            description="99% of serving requests (admission + execution) "
                        "answer within ~100ms (bucket-snapped) over the "
                        "accounting window; the serving layer's "
                        "backpressure gate enforces the same threshold.",
        ),
    ]


def load_slos(path: str | Path) -> list[SLO]:
    """Parse an ``SLO.json`` document: ``{"slos": [...]}`` or a list."""
    doc = json.loads(Path(path).read_text())
    items = doc["slos"] if isinstance(doc, dict) else doc
    if not isinstance(items, list):
        raise ReproError(f"SLO document must hold a list, got {type(items)}")
    return [slo_from_dict(d) for d in items]


def evaluate_slos(
    slos: list[SLO], ring: TimeSeriesRing
) -> dict:
    """Verdicts for every SLO plus a roll-up, sentinel-style."""
    verdicts = [slo.evaluate(ring) for slo in slos]
    return {
        "slos": verdicts,
        "firing": any(v["firing"] for v in verdicts),
        "exhausted": any(
            v["error_budget"]["exhausted"] for v in verdicts
        ),
        "ok": all(v["ok"] for v in verdicts),
    }


def serve_tenant_template(slos: list[SLO] | None = None) -> LatencySLO:
    """The per-tenant latency SLO shape, derived from the committed one.

    Objective / threshold / window / alerts come from the serving-path
    latency SLO (metric ``repro_serve_request_seconds``) when one is
    present in ``slos``, so the fleet-wide commitment and the per-tenant
    breakdown never drift apart; the target metric is the tenant-labeled
    ``repro_serve_tenant_seconds`` histogram.
    """
    base = None
    for candidate in slos or ():
        if (
            isinstance(candidate, LatencySLO)
            and candidate.metric == "repro_serve_request_seconds"
        ):
            base = candidate
            break
    if base is None:
        return LatencySLO(
            name="serve_tenant_latency",
            objective=0.99,
            metric="repro_serve_tenant_seconds",
            threshold_s=0.1,
            description="Per-tenant serving latency objective.",
        )
    return LatencySLO(
        name=f"{base.name}_by_tenant",
        objective=base.objective,
        metric="repro_serve_tenant_seconds",
        threshold_s=base.threshold_s,
        description=f"Per-tenant breakdown of {base.name}.",
        window_s=base.window_s,
        alerts=base.alerts,
    )


def evaluate_tenant_slos(
    ring: TimeSeriesRing,
    slos: list[SLO] | None = None,
    label: str = "tenant",
) -> dict:
    """Per-tenant latency SLO verdicts, keyed by tenant label value.

    Tenants are discovered from the ring itself (every label value the
    tenant-latency histogram has taken inside the ring's horizon), so
    an idle tenant ages out together with its samples.
    """
    template = serve_tenant_template(slos)
    verdicts: dict[str, dict] = {}
    for tenant in ring.label_values(template.metric, label):
        scoped = LatencySLO(
            name=f"{template.name}[{tenant}]",
            objective=template.objective,
            metric=template.metric,
            threshold_s=template.threshold_s,
            labels={label: tenant},
            description=template.description,
            window_s=template.window_s,
            alerts=template.alerts,
        )
        verdicts[tenant] = scoped.evaluate(ring)
    return verdicts
