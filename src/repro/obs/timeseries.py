"""Windowed time-series over periodic metrics-registry snapshots.

The :class:`~repro.obs.metrics.MetricsRegistry` holds *cumulative*
state — totals since process start.  Operations needs *rates over
windows*: queries/s over the last minute, p99 over the last 30 s, error
budget burned in the last 5 min.  This module bridges the two with a
:class:`TimeSeriesRing`: a bounded ring of periodic registry snapshots,
**delta-encoded** — each slot stores only the per-series change since
the previous sample (zero-delta series are dropped), so a mostly-idle
process costs a few bytes per slot.

From the ring, windowed views are reconstructed by summing slot deltas:

* :meth:`TimeSeriesRing.rate` — counter increase per second over a
  window;
* :meth:`TimeSeriesRing.delta` — raw counter increase over a window;
* :meth:`TimeSeriesRing.window_quantile` — p50/p95/p99 reconstructed
  from the *histogram bucket-count deltas* of the window via the shared
  interpolation rule (:func:`repro.obs.metrics.quantile_from_counts`),
  i.e. the quantile of observations that happened *inside* the window,
  not since process start.  Accuracy is bounded by the histogram's
  log-bucket factor (one bucket; see the property test).

Sampling is driven by :class:`Sampler`, a daemon thread calling
:meth:`TimeSeriesRing.sample` on an interval; ``pre_sample`` callbacks
(e.g. :func:`repro.obs.resources.collect`) run right before each
snapshot so point-in-time gauges land in the same slot.  ``sample`` is
lock-cheap: one pass over the registry (taking only the per-family
locks the exporters already take) plus one ring append under the ring
lock — the query hot path is never touched.

The SLO burn-rate engine (:mod:`repro.obs.slo`) and the ``/timeseries.json``
/ ``/dashboard`` endpoints (:mod:`repro.obs.export`) are the consumers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs import metrics as _metrics
from repro.obs.metrics import quantile_from_counts

#: Default ring capacity: at the default 1 s interval this is 10 min of
#: history, comfortably covering the default SLO windows.
DEFAULT_CAPACITY = 600


@dataclass(slots=True)
class Slot:
    """One sampling interval's worth of activity (delta-encoded).

    ``counters`` maps ``(name, labelvalues)`` to the counter's increase
    during the interval; ``hist`` maps the same key to
    ``(bucket_count_deltas, sum_delta, count_delta)``; ``gauges`` hold
    absolute point-in-time values (deltas of a gauge are meaningless).
    """

    ts: float            # wall clock, for display/correlation
    mono: float          # perf_counter, for window math
    dt: float            # seconds covered (mono - previous mono)
    counters: dict = field(default_factory=dict)
    hist: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)


class TimeSeriesRing:
    """Bounded ring of delta-encoded registry snapshots (module doc)."""

    def __init__(
        self,
        registry: "_metrics.MetricsRegistry | None" = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 2:
            raise ReproError(f"ring capacity must be >= 2, got {capacity}")
        # None = resolve the default registry lazily at every sample, so
        # a scoped_registry swap is honored mid-flight.
        self._registry = registry
        self._lock = threading.Lock()
        self._slots: deque[Slot] = deque(maxlen=capacity)
        self._last_counters: dict = {}
        self._last_hist: dict = {}
        self._last_mono: float | None = None
        #: Histogram bucket bounds and label names by family name, for
        #: windowed reconstruction and label matching.
        self._buckets: dict[str, tuple[float, ...]] = {}
        self._labelnames: dict[str, tuple[str, ...]] = {}
        self._samples_taken = 0

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _resolve_registry(self) -> "_metrics.MetricsRegistry":
        return self._registry or _metrics.registry()

    def sample(self) -> Slot:
        """Snapshot the registry and append one delta slot to the ring."""
        reg = self._resolve_registry()
        ts = time.time()
        mono = time.perf_counter()
        counters: dict = {}
        hist: dict = {}
        gauges: dict = {}
        cur_counters: dict = {}
        cur_hist: dict = {}
        for family in reg.families():
            kind = family.type_name
            if kind == "histogram":
                self._buckets.setdefault(
                    family.name, tuple(family._child_kwargs["buckets"])
                )
            self._labelnames.setdefault(family.name, family.labelnames)
            for lv, child in family.series():
                key = (family.name, lv)
                if kind == "counter":
                    cur_counters[key] = child.value
                elif kind == "gauge":
                    gauges[key] = child.value
                elif kind == "histogram":
                    cur_hist[key] = (
                        child.bucket_counts(), child.sum, child.count
                    )
        with self._lock:
            for key, value in cur_counters.items():
                delta = value - self._last_counters.get(key, 0.0)
                if delta:
                    counters[key] = delta
            for key, (counts, sum_, count) in cur_hist.items():
                prev = self._last_hist.get(key)
                if prev is None:
                    if count:
                        hist[key] = (list(counts), sum_, count)
                    continue
                dcount = count - prev[2]
                if dcount:
                    hist[key] = (
                        [c - p for c, p in zip(counts, prev[0])],
                        sum_ - prev[1],
                        dcount,
                    )
            dt = mono - self._last_mono if self._last_mono is not None else 0.0
            slot = Slot(
                ts=ts, mono=mono, dt=max(0.0, dt),
                counters=counters, hist=hist, gauges=gauges,
            )
            self._slots.append(slot)
            self._last_counters = cur_counters
            self._last_hist = cur_hist
            self._last_mono = mono
            self._samples_taken += 1
        return slot

    # ------------------------------------------------------------------
    # windowed views
    # ------------------------------------------------------------------
    def _matches(self, name: str, lv: tuple, labels: dict | None) -> bool:
        if labels is None:
            return True
        names = self._labelnames.get(name, ())
        bound = dict(zip(names, lv))
        return all(bound.get(k) == str(v) for k, v in labels.items())

    def _window_slots(self, window_s: float) -> list[Slot]:
        with self._lock:
            slots = list(self._slots)
        if not slots:
            return []
        horizon = slots[-1].mono - window_s
        # A slot covers (mono - dt, mono]; include it if any part of the
        # interval is inside the window.  The first slot has dt == 0 and
        # only contributes gauges.
        return [s for s in slots if s.mono > horizon]

    def window_span(self, window_s: float) -> float:
        """Seconds actually covered by the window's slots (<= window_s)."""
        return sum(s.dt for s in self._window_slots(window_s))

    def delta(
        self, name: str, window_s: float, labels: dict | None = None
    ) -> float:
        """Counter increase over the window (summed across label sets)."""
        total = 0.0
        for slot in self._window_slots(window_s):
            for (fam, lv), value in slot.counters.items():
                if fam == name and self._matches(name, lv, labels):
                    total += value
        return total

    def rate(
        self, name: str, window_s: float = 60.0, labels: dict | None = None
    ) -> float:
        """Counter increase per second over the window (0.0 if no span)."""
        span = self.window_span(window_s)
        if span <= 0.0:
            return 0.0
        return self.delta(name, window_s, labels) / span

    def window_hist(
        self, name: str, window_s: float, labels: dict | None = None
    ) -> tuple[list[int], float, int]:
        """Summed histogram ``(bucket_deltas, sum, count)`` over the window."""
        buckets = self._buckets.get(name)
        n = (len(buckets) + 1) if buckets is not None else 0
        counts = [0] * n
        sum_ = 0.0
        count = 0
        for slot in self._window_slots(window_s):
            for (fam, lv), (dcounts, dsum, dcount) in slot.hist.items():
                if fam != name or not self._matches(name, lv, labels):
                    continue
                if not counts:
                    counts = [0] * len(dcounts)
                for i, c in enumerate(dcounts):
                    counts[i] += c
                sum_ += dsum
                count += dcount
        return counts, sum_, count

    def window_quantile(
        self,
        name: str,
        q: float,
        window_s: float = 60.0,
        labels: dict | None = None,
    ) -> float:
        """Interpolated q-quantile of observations inside the window."""
        buckets = self._buckets.get(name)
        if buckets is None:
            return 0.0
        counts, _, _ = self.window_hist(name, window_s, labels)
        return quantile_from_counts(buckets, counts, q)

    def window_count(
        self, name: str, window_s: float, labels: dict | None = None
    ) -> int:
        """Histogram observation count inside the window."""
        return self.window_hist(name, window_s, labels)[2]

    def latest_gauge(
        self, name: str, labels: dict | None = None
    ) -> float | None:
        """Most recent gauge value (summed across matching label sets)."""
        with self._lock:
            slots = list(self._slots)
        for slot in reversed(slots):
            values = [
                v for (fam, lv), v in slot.gauges.items()
                if fam == name and self._matches(name, lv, labels)
            ]
            if values:
                return sum(values)
        return None

    def buckets(self, name: str) -> tuple[float, ...] | None:
        """Bucket bounds of a sampled histogram family, if seen."""
        return self._buckets.get(name)

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values one label has taken for a family (sorted).

        Enumerates every sampled slot, so it sees exactly the label sets
        the ring can answer windowed queries about — e.g. the tenants
        with any traffic inside the ring's horizon.
        """
        names = self._labelnames.get(name, ())
        try:
            idx = names.index(label)
        except ValueError:
            return []
        with self._lock:
            slots = list(self._slots)
        values: set[str] = set()
        for slot in slots:
            for series in (slot.counters, slot.hist, slot.gauges):
                for fam, lv in series:
                    if fam == name and len(lv) > idx:
                        values.add(lv[idx])
        return sorted(values)

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    @property
    def capacity(self) -> int:
        return self._slots.maxlen or DEFAULT_CAPACITY

    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    def slots(self) -> list[Slot]:
        """Buffered slots, oldest first (a shallow copy)."""
        with self._lock:
            return list(self._slots)

    def timeline(
        self,
        counter_names: Sequence[str] = (),
        hist_names: Sequence[str] = (),
        gauge_names: Sequence[str] = (),
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
        max_slots: int | None = None,
    ) -> list[dict]:
        """Per-slot derived values for charting (``/timeseries.json``).

        Each entry carries the slot timestamp plus, per requested
        counter, its *rate* over the slot; per histogram, the slot's
        observation count and reconstructed quantiles; per gauge, the
        latest absolute value (summed across label sets).
        """
        slots = self.slots()
        if max_slots is not None:
            slots = slots[-max_slots:]
        out = []
        for slot in slots:
            entry: dict = {"ts": slot.ts, "dt": slot.dt}
            for name in counter_names:
                total = sum(
                    v for (fam, _), v in slot.counters.items() if fam == name
                )
                entry.setdefault("rates", {})[name] = (
                    total / slot.dt if slot.dt > 0 else 0.0
                )
            for name in hist_names:
                buckets = self._buckets.get(name)
                counts: list[int] = []
                count = 0
                for (fam, _), (dcounts, _, dcount) in slot.hist.items():
                    if fam != name:
                        continue
                    if not counts:
                        counts = [0] * len(dcounts)
                    for i, c in enumerate(dcounts):
                        counts[i] += c
                    count += dcount
                h = {"count": count}
                if buckets is not None and count:
                    for q in quantiles:
                        h[f"p{round(q * 100)}"] = quantile_from_counts(
                            buckets, counts, q
                        )
                entry.setdefault("hist", {})[name] = h
            for name in gauge_names:
                values = [
                    v for (fam, _), v in slot.gauges.items() if fam == name
                ]
                if values:
                    entry.setdefault("gauges", {})[name] = sum(values)
            out.append(entry)
        return out

    def clear(self) -> int:
        """Drop all slots and delta baselines; returns #slots dropped."""
        with self._lock:
            n = len(self._slots)
            self._slots.clear()
            self._last_counters = {}
            self._last_hist = {}
            self._last_mono = None
            self._samples_taken = 0
        return n


class Sampler:
    """Daemon thread sampling a ring on an interval.

    ``pre_sample`` callables run immediately before each snapshot (the
    resource sampler hooks in here so its gauges land in the same slot);
    a failing callback is disabled after the first exception rather than
    killing the sampling loop.
    """

    def __init__(
        self,
        ring: TimeSeriesRing,
        interval_s: float = 1.0,
        pre_sample: Sequence = (),
    ) -> None:
        if interval_s <= 0:
            raise ReproError(f"interval must be > 0, got {interval_s}")
        self.ring = ring
        self.interval_s = interval_s
        self._pre_sample = list(pre_sample)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _tick(self) -> None:
        for hook in list(self._pre_sample):
            try:
                hook()
            except Exception:  # noqa: BLE001 — never kill the loop
                self._pre_sample.remove(hook)
        self.ring.sample()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._tick()

    def start(self) -> "Sampler":
        if self._thread is None:
            self._stop.clear()
            self._tick()  # immediate first slot: windows work right away
            self._thread = threading.Thread(
                target=self._loop, name="repro-ts-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5)
            self._thread = None
            self._tick()  # final slot so the tail of the run is captured

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "Sampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
