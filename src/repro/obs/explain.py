"""EXPLAIN/ANALYZE query plans: why a query was fast or slow.

The paper's algorithms live or die on pruning effectiveness — STDS's
early-termination threshold ``τ̂(p)`` (Section 5, Algorithms 1-2), STPS's
valid-combination assembly under Lemma 1 and the prioritized pulling
strategy (Section 6, Algorithms 3-4).  The metrics registry reports *how
long* phases took; this module reports *why*: per-feature-set node
accesses vs. prunes with the ``ŝ(e)`` bound values, combinations
assembled vs. rejected by Lemma 1, the threshold trajectory per pulling
round, and — for the sharded engine — per-shard fan-out verdicts.

A :class:`DiagnosticsCollector` is threaded alongside the existing
``PhaseRecorder`` through the query stack (``QueryProcessor.query``
accepts ``collector=``); when absent, hot paths see the shared
:data:`NULL_COLLECTOR` (``active`` is False) and pay one attribute check
per instrumentation point — the ``explain=False`` overhead budget is
<5% on the smoke bench.

The result is a :class:`QueryPlan` with a JSON renderer
(:meth:`QueryPlan.to_dict` / :meth:`QueryPlan.to_json`) and a
human-readable table renderer (:meth:`QueryPlan.render`).  Plan counts
reconcile *exactly* with the metrics-registry counter deltas
(``repro_combinations_total``, ``repro_features_pulled_total``,
``repro_objects_scored_total``, ``repro_shard_queries``) — enforced by
``tests/differential/test_plan_reconciliation.py`` for every engine
variant.

Typical use::

    report = processor.explain(query, algorithm="stps")
    print(report.plan.render())          # human table
    report.plan.to_json()                # machine-readable
    report.result                        # the ordinary QueryResult

or from the command line::

    python -m repro.obs explain --algorithm stds --k 10
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field

#: Version of the plan JSON schema (bump on breaking field changes).
PLAN_SCHEMA_VERSION = 1

#: Caps keeping a plan small no matter how pathological the query is.
MAX_TRAJECTORY = 512
MAX_CHUNKS = 256
MAX_BOUND_SAMPLES = 8


class BoundSummary:
    """Running summary of a stream of bound values (``ŝ(e)``).

    Keeps count, min, max and the first :data:`MAX_BOUND_SAMPLES` values —
    enough to see *what* the pruning threshold was cutting against
    without storing one float per pruned node.
    """

    __slots__ = ("count", "min", "max", "sample")

    def __init__(self) -> None:
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self.sample: list[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.sample) < MAX_BOUND_SAMPLES:
            self.sample.append(value)

    def merge(self, other: "BoundSummary") -> None:
        if other.count == 0:
            return
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for value in other.sample:
            if len(self.sample) >= MAX_BOUND_SAMPLES:
                break
            self.sample.append(value)

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "sample": list(self.sample),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BoundSummary":
        out = cls()
        out.count = data.get("count", 0)
        if out.count:
            out.min = data["min"]
            out.max = data["max"]
            out.sample = list(data.get("sample", []))
        return out


@dataclass(slots=True)
class FeatureSetDiag:
    """Per-feature-set traversal anatomy (Algorithm 2 / the streams)."""

    set_id: int
    #: Index nodes expanded (read + children pushed) for this set.
    nodes_visited: int = 0
    #: Internal entries discarded without expansion (text-irrelevant at
    #: push time, or bound-pruned at pop time — see ``pruned_bounds``).
    nodes_pruned: int = 0
    #: Leaf entries discarded (text-irrelevant or out of range).
    entries_pruned: int = 0
    #: ``ŝ(e)`` values of entries pruned *by bound* (the batched STDS
    #: expansion rule; push-time text prunes carry no bound).
    pruned_bounds: BoundSummary = field(default_factory=BoundSummary)
    #: Feature objects pulled from this set's sorted stream (STPS).
    #: Reconciles with ``repro_features_pulled_total{feature_set=...}``.
    features_pulled: int = 0
    #: Pulling rounds charged to this set (Definition 5 decisions).
    pull_rounds: int = 0

    def to_dict(self) -> dict:
        return {
            "set_id": self.set_id,
            "nodes_visited": self.nodes_visited,
            "nodes_pruned": self.nodes_pruned,
            "entries_pruned": self.entries_pruned,
            "pruned_bounds": self.pruned_bounds.to_dict(),
            "features_pulled": self.features_pulled,
            "pull_rounds": self.pull_rounds,
        }


@dataclass(slots=True)
class CombinationDiag:
    """Algorithm 3-4 anatomy: the valid-combination stream."""

    #: Combinations released to the caller (valid under Lemma 1).
    #: Reconciles with ``repro_combinations_total``.
    released: int = 0
    #: Combinations assembled but rejected by the ``2r`` rule (Lemma 1).
    rejected_2r: int = 0
    #: Released combinations whose retrieval was skipped by the
    #: distance-aware influence bound (Algorithm 5 extension).
    retrievals_skipped: int = 0
    #: Total pulling rounds across all sets.
    pull_rounds: int = 0
    #: τ trajectory: one point per pulling round (capped; ``pull_rounds``
    #: keeps the true total).  Each point is (round, set pulled from,
    #: τ before the pull, that set's next bound ``min_j``).
    trajectory: list[tuple[int, int, float, float]] = field(
        default_factory=list
    )

    def to_dict(self) -> dict:
        return {
            "released": self.released,
            "rejected_2r": self.rejected_2r,
            "retrievals_skipped": self.retrievals_skipped,
            "pull_rounds": self.pull_rounds,
            "trajectory": [
                {
                    "round": r,
                    "set_id": s,
                    "threshold": None if math.isinf(t) else t,
                    "next_bound": b,
                }
                for r, s, t, b in self.trajectory
            ],
            "trajectory_truncated": self.pull_rounds > len(self.trajectory),
        }


@dataclass(slots=True)
class STDSDiag:
    """Algorithm 1 anatomy: the chunked scan and its threshold fold."""

    #: Objects dropped early by the ``τ̂(p) < threshold`` rule.
    objects_dropped: int = 0
    #: Early inner-loop terminations in the per-object variants.
    early_terminations: int = 0
    #: Final value of the k-th-score threshold.
    threshold_final: float = -math.inf
    #: (chunk id, chunk size, threshold after the fold), capped.
    chunks: list[tuple[int, int, float]] = field(default_factory=list)
    chunk_count: int = 0

    def to_dict(self) -> dict:
        return {
            "objects_dropped": self.objects_dropped,
            "early_terminations": self.early_terminations,
            "threshold_final": (
                None if math.isinf(self.threshold_final)
                else self.threshold_final
            ),
            "chunks": [
                {
                    "chunk": c,
                    "size": n,
                    "threshold": None if math.isinf(t) else t,
                }
                for c, n, t in self.chunks
            ],
            "chunk_count": self.chunk_count,
        }


@dataclass(slots=True)
class ShardDiag:
    """One shard's fan-out verdict for one sharded query."""

    shard_id: int
    #: ``pruned`` (root bound below the merged floor), ``executed``, or
    #: ``failed``.  Reconciles with ``repro_shard_queries{outcome=...}``.
    verdict: str
    #: The shard's advertised root bound ``Σ_i max ŝ_i``.
    bound: float = 0.0
    #: The merged cross-shard floor the verdict was decided against.
    floor: float = -math.inf
    elapsed_s: float = 0.0
    error: str | None = None
    #: Full sub-plan of the per-shard execution (executed shards only).
    plan: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "shard_id": self.shard_id,
            "verdict": self.verdict,
            "bound": self.bound,
            "floor": None if math.isinf(self.floor) else self.floor,
            "elapsed_s": self.elapsed_s,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.plan is not None:
            out["plan"] = self.plan
        return out


@dataclass(slots=True)
class QueryPlan:
    """The structured outcome of one EXPLAIN'd query execution."""

    schema_version: int = PLAN_SCHEMA_VERSION
    trace_id: str = ""
    algorithm: str = ""
    variant: str = ""
    pulling: str = ""
    k: int = 0
    radius: float = 0.0
    lam: float = 0.0
    c: int = 0
    elapsed_s: float = 0.0
    #: Reconciles with ``repro_objects_scored_total``.
    objects_scored: int = 0
    feature_sets: list[FeatureSetDiag] = field(default_factory=list)
    combinations: CombinationDiag | None = None
    stds: STDSDiag | None = None
    #: NN variant only: Voronoi-cell accounting.
    voronoi: dict | None = None
    #: ISS only: bound-probe accounting.
    iss: dict | None = None
    shards: list[ShardDiag] = field(default_factory=list)
    #: Phase wall-times copied from the result stats (tracing on only).
    phase_times: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # reconciliation / rendering
    # ------------------------------------------------------------------
    @property
    def combinations_released(self) -> int:
        return self.combinations.released if self.combinations else 0

    @property
    def features_pulled_total(self) -> int:
        return sum(d.features_pulled for d in self.feature_sets)

    def shard_outcomes(self) -> dict[str, int]:
        """Verdict counts, e.g. ``{"executed": 3, "pruned": 1}``."""
        out: dict[str, int] = {}
        for shard in self.shards:
            out[shard.verdict] = out.get(shard.verdict, 0) + 1
        return out

    def counters(self) -> dict[str, float]:
        """The flat counter view the metrics registry must agree with.

        Keys mirror the registered families so the differential tests can
        assert ``plan.counters() == registry counter deltas`` exactly.
        """
        out: dict[str, float] = {
            "repro_combinations_total": float(self.combinations_released),
            "repro_objects_scored_total": float(self.objects_scored),
        }
        for diag in self.feature_sets:
            out[f"repro_features_pulled_total[{diag.set_id}]"] = float(
                diag.features_pulled
            )
        for verdict, count in self.shard_outcomes().items():
            out[f"repro_shard_queries[{verdict}]"] = float(count)
        return out

    def to_dict(self) -> dict:
        out = {
            "schema_version": self.schema_version,
            "trace_id": self.trace_id,
            "algorithm": self.algorithm,
            "variant": self.variant,
            "pulling": self.pulling,
            "k": self.k,
            "radius": self.radius,
            "lam": self.lam,
            "c": self.c,
            "elapsed_s": self.elapsed_s,
            "objects_scored": self.objects_scored,
            "feature_sets": [d.to_dict() for d in self.feature_sets],
        }
        if self.combinations is not None:
            out["combinations"] = self.combinations.to_dict()
        if self.stds is not None:
            out["stds"] = self.stds.to_dict()
        if self.voronoi is not None:
            out["voronoi"] = dict(self.voronoi)
        if self.iss is not None:
            out["iss"] = dict(self.iss)
        if self.shards:
            out["shards"] = [s.to_dict() for s in self.shards]
            out["shard_outcomes"] = self.shard_outcomes()
        if self.phase_times:
            out["phase_times"] = dict(self.phase_times)
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "QueryPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        The inverse of the JSON rendering up to the lossy ``inf -> None``
        mapping, which is inverted back (``None -> -inf`` where a -inf
        default applies).  Used by the process-mode shard fan-out to
        transfer a worker's sub-plan over the result channel and fold it
        into the parent plan exactly as a thread-mode sub-collector
        would be.
        """
        plan = cls(
            schema_version=data.get("schema_version", PLAN_SCHEMA_VERSION),
            trace_id=data.get("trace_id", ""),
            algorithm=data.get("algorithm", ""),
            variant=data.get("variant", ""),
            pulling=data.get("pulling", ""),
            k=data.get("k", 0),
            radius=data.get("radius", 0.0),
            lam=data.get("lam", 0.0),
            c=data.get("c", 0),
            elapsed_s=data.get("elapsed_s", 0.0),
            objects_scored=data.get("objects_scored", 0),
        )
        for d in data.get("feature_sets", []):
            diag = FeatureSetDiag(
                set_id=d["set_id"],
                nodes_visited=d.get("nodes_visited", 0),
                nodes_pruned=d.get("nodes_pruned", 0),
                entries_pruned=d.get("entries_pruned", 0),
                pruned_bounds=BoundSummary.from_dict(
                    d.get("pruned_bounds", {"count": 0})
                ),
                features_pulled=d.get("features_pulled", 0),
                pull_rounds=d.get("pull_rounds", 0),
            )
            plan.feature_sets.append(diag)
        if "combinations" in data:
            cd = data["combinations"]
            diag = CombinationDiag(
                released=cd.get("released", 0),
                rejected_2r=cd.get("rejected_2r", 0),
                retrievals_skipped=cd.get("retrievals_skipped", 0),
                pull_rounds=cd.get("pull_rounds", 0),
            )
            for point in cd.get("trajectory", []):
                threshold = point.get("threshold")
                diag.trajectory.append((
                    point["round"],
                    point["set_id"],
                    -math.inf if threshold is None else threshold,
                    point["next_bound"],
                ))
            plan.combinations = diag
        if "stds" in data:
            sd = data["stds"]
            threshold_final = sd.get("threshold_final")
            diag = STDSDiag(
                objects_dropped=sd.get("objects_dropped", 0),
                early_terminations=sd.get("early_terminations", 0),
                threshold_final=(
                    -math.inf if threshold_final is None else threshold_final
                ),
                chunk_count=sd.get("chunk_count", 0),
            )
            for chunk in sd.get("chunks", []):
                threshold = chunk.get("threshold")
                diag.chunks.append((
                    chunk["chunk"],
                    chunk["size"],
                    -math.inf if threshold is None else threshold,
                ))
            plan.stds = diag
        if "voronoi" in data:
            plan.voronoi = dict(data["voronoi"])
        if "iss" in data:
            plan.iss = dict(data["iss"])
        for s in data.get("shards", []):
            floor = s.get("floor")
            plan.shards.append(ShardDiag(
                shard_id=s["shard_id"],
                verdict=s["verdict"],
                bound=s.get("bound", 0.0),
                floor=-math.inf if floor is None else floor,
                elapsed_s=s.get("elapsed_s", 0.0),
                error=s.get("error"),
                plan=s.get("plan"),
            ))
        if "phase_times" in data:
            plan.phase_times = dict(data["phase_times"])
        return plan

    def render(self) -> str:
        """Human-readable plan: aligned tables, one section per stage."""
        lines = [
            f"QUERY PLAN  [{self.algorithm}/{self.variant}"
            + (f"/{self.pulling}" if self.pulling else "")
            + f"]  trace_id={self.trace_id or '-'}",
            f"  k={self.k}  r={self.radius}  lambda={self.lam}  "
            f"c={self.c}  elapsed={self.elapsed_s * 1e3:.2f}ms  "
            f"objects_scored={self.objects_scored}",
        ]
        if self.feature_sets:
            lines.append(
                "  feature sets (Algorithm 2 / sorted streams):"
            )
            lines.append(
                "    set  visited  pruned  leaf_pruned  pulled  rounds"
                "  pruned-bound range"
            )
            for d in self.feature_sets:
                pb = d.pruned_bounds
                span = (
                    f"[{pb.min:.4f}, {pb.max:.4f}]" if pb.count else "-"
                )
                lines.append(
                    f"    {d.set_id:>3}  {d.nodes_visited:>7}  "
                    f"{d.nodes_pruned:>6}  {d.entries_pruned:>11}  "
                    f"{d.features_pulled:>6}  {d.pull_rounds:>6}  {span}"
                )
        if self.combinations is not None:
            cd = self.combinations
            lines.append(
                f"  combinations (Algorithms 3-4): released={cd.released}"
                f"  rejected_2r={cd.rejected_2r}"
                + (
                    f"  retrievals_skipped={cd.retrievals_skipped}"
                    if cd.retrievals_skipped
                    else ""
                )
                + f"  pull_rounds={cd.pull_rounds}"
            )
            if cd.trajectory:
                head = cd.trajectory[: min(len(cd.trajectory), 6)]
                shown = ", ".join(
                    f"#{r}:set{s}"
                    + (f" tau={t:.4f}" if not math.isinf(t) else " tau=-inf")
                    for r, s, t, _ in head
                )
                suffix = " ..." if cd.pull_rounds > len(head) else ""
                lines.append(f"    tau trajectory: {shown}{suffix}")
        if self.stds is not None:
            sd = self.stds
            final = (
                "-inf" if math.isinf(sd.threshold_final)
                else f"{sd.threshold_final:.4f}"
            )
            lines.append(
                f"  stds scan (Algorithm 1): chunks={sd.chunk_count}"
                f"  dropped={sd.objects_dropped}"
                f"  early_terminations={sd.early_terminations}"
                f"  final_threshold={final}"
            )
        if self.voronoi is not None:
            v = self.voronoi
            lines.append(
                "  voronoi (Section 7.2): "
                f"cells_computed={v.get('cells_computed', 0)}"
                f"  cache_hits={v.get('cell_cache_hits', 0)}"
                f"  empty_intersections={v.get('empty_intersections', 0)}"
            )
        if self.iss is not None:
            p = self.iss
            lines.append(
                "  iss (extension): "
                f"point_probes={p.get('bound_probes_point', 0)}"
                f"  node_probes={p.get('bound_probes_node', 0)}"
            )
        if self.shards:
            lines.append(
                f"  shard fan-out: {self.shard_outcomes()}"
            )
            lines.append(
                "    shard  verdict   bound      floor      elapsed"
            )
            for s in self.shards:
                floor = (
                    "-inf" if math.isinf(s.floor) else f"{s.floor:.4f}"
                )
                lines.append(
                    f"    {s.shard_id:>5}  {s.verdict:<8}  "
                    f"{s.bound:>8.4f}  {floor:>9}  "
                    f"{s.elapsed_s * 1e3:>8.2f}ms"
                    + (f"  error={s.error}" if s.error else "")
                )
        if self.phase_times:
            lines.append("  phase times:")
            for phase, seconds in sorted(self.phase_times.items()):
                lines.append(f"    {phase:<32} {seconds:.4f}s")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# collectors
# ----------------------------------------------------------------------
class DiagnosticsCollector:
    """Accumulates a :class:`QueryPlan` while a query executes.

    Thread-safe: the sharded fan-out records verdicts from worker
    threads, and the parallel STDS chunk scan updates per-set counts
    concurrently.  All mutation goes through one lock — EXPLAIN mode is
    diagnostic, correctness beats nanoseconds here; the *disabled* path
    (:data:`NULL_COLLECTOR`) costs one attribute check.
    """

    __slots__ = ("_plan", "_lock", "_set_diags")

    active = True

    def __init__(self) -> None:
        self._plan = QueryPlan()
        self._lock = threading.Lock()
        self._set_diags: dict[int, FeatureSetDiag] = {}

    # -- feature-set traversal (Algorithm 2 / streams) ------------------
    def _set_diag(self, set_id: int) -> FeatureSetDiag:
        diag = self._set_diags.get(set_id)
        if diag is None:
            diag = FeatureSetDiag(set_id)
            self._set_diags[set_id] = diag
            self._plan.feature_sets.append(diag)
            self._plan.feature_sets.sort(key=lambda d: d.set_id)
        return diag

    def node_visited(self, set_id: int, bound: float) -> None:
        """An index node of ``set_id`` was expanded at bound ``ŝ(e)``."""
        with self._lock:
            self._set_diag(set_id).nodes_visited += 1

    def node_pruned(
        self, set_id: int, bound: float | None = None
    ) -> None:
        """An internal entry was discarded; ``bound`` when bound-pruned."""
        with self._lock:
            diag = self._set_diag(set_id)
            diag.nodes_pruned += 1
            if bound is not None:
                diag.pruned_bounds.add(bound)

    def entries_pruned(self, set_id: int, count: int = 1) -> None:
        """``count`` leaf entries were discarded (text / range)."""
        if count <= 0:
            return
        with self._lock:
            self._set_diag(set_id).entries_pruned += count

    def feature_pulled(self, set_id: int) -> None:
        """One feature object left ``set_id``'s sorted stream."""
        with self._lock:
            self._set_diag(set_id).features_pulled += 1

    # -- combination stream (Algorithms 3-4) ----------------------------
    def _combinations(self) -> CombinationDiag:
        if self._plan.combinations is None:
            self._plan.combinations = CombinationDiag()
        return self._plan.combinations

    def pull(
        self, set_id: int, threshold: float, next_bound: float
    ) -> None:
        """One pulling round: ``set_id`` chosen at threshold ``τ``."""
        with self._lock:
            diag = self._combinations()
            diag.pull_rounds += 1
            self._set_diag(set_id).pull_rounds += 1
            if len(diag.trajectory) < MAX_TRAJECTORY:
                diag.trajectory.append(
                    (diag.pull_rounds, set_id, threshold, next_bound)
                )

    def combination(self, score: float, accepted: bool) -> None:
        """A combination was assembled; ``accepted`` per Lemma 1."""
        with self._lock:
            diag = self._combinations()
            if accepted:
                diag.released += 1
            else:
                diag.rejected_2r += 1

    def retrieval_skipped(self, score: float) -> None:
        """A released combination's retrieval was bound-skipped."""
        with self._lock:
            self._combinations().retrievals_skipped += 1

    # -- STDS scan (Algorithm 1) ----------------------------------------
    def _stds(self) -> STDSDiag:
        if self._plan.stds is None:
            self._plan.stds = STDSDiag()
        return self._plan.stds

    def chunk(self, chunk_id: int, size: int, threshold: float) -> None:
        with self._lock:
            diag = self._stds()
            diag.chunk_count += 1
            diag.threshold_final = threshold
            if len(diag.chunks) < MAX_CHUNKS:
                diag.chunks.append((chunk_id, size, threshold))

    def objects_dropped(self, count: int = 1) -> None:
        if count <= 0:
            return
        with self._lock:
            self._stds().objects_dropped += count

    def early_termination(self) -> None:
        with self._lock:
            self._stds().early_terminations += 1

    # -- NN Voronoi / ISS ----------------------------------------------
    def voronoi_cell(self, cache_hit: bool) -> None:
        with self._lock:
            v = self._plan.voronoi
            if v is None:
                v = self._plan.voronoi = {
                    "cells_computed": 0,
                    "cell_cache_hits": 0,
                    "empty_intersections": 0,
                }
            v["cell_cache_hits" if cache_hit else "cells_computed"] += 1

    def voronoi_empty(self) -> None:
        with self._lock:
            v = self._plan.voronoi
            if v is None:
                v = self._plan.voronoi = {
                    "cells_computed": 0,
                    "cell_cache_hits": 0,
                    "empty_intersections": 0,
                }
            v["empty_intersections"] += 1

    def iss_probe(self, point: bool) -> None:
        with self._lock:
            p = self._plan.iss
            if p is None:
                p = self._plan.iss = {
                    "bound_probes_point": 0,
                    "bound_probes_node": 0,
                }
            p["bound_probes_point" if point else "bound_probes_node"] += 1

    # -- shard fan-out --------------------------------------------------
    def child(self, shard_id: int) -> "DiagnosticsCollector":
        """A fresh collector for one shard's per-shard execution."""
        return DiagnosticsCollector()

    def shard(
        self,
        shard_id: int,
        verdict: str,
        bound: float,
        floor: float,
        elapsed_s: float = 0.0,
        error: str | None = None,
        sub: "DiagnosticsCollector | None" = None,
        sub_plan: "QueryPlan | None" = None,
    ) -> None:
        """Record one shard's fan-out verdict (thread-safe).

        An executed shard's ``sub`` collector (already finalized by the
        per-shard query) is embedded as a sub-plan AND folded into this
        plan's aggregates, so the parent plan's counters reconcile with
        the registry deltas the per-shard executions produced.

        ``sub_plan`` is the process-mode equivalent: a plan already
        deserialized from a worker's result payload
        (:meth:`QueryPlan.from_dict`), embedded and folded identically.
        """
        if sub_plan is None and sub is not None:
            sub_plan = sub.plan()
        diag = ShardDiag(
            shard_id=shard_id,
            verdict=verdict,
            bound=bound,
            floor=floor,
            elapsed_s=elapsed_s,
            error=error,
            plan=sub_plan.to_dict() if sub_plan is not None else None,
        )
        with self._lock:
            self._plan.shards.append(diag)
            self._plan.shards.sort(key=lambda s: s.shard_id)
            if sub_plan is not None:
                self._merge_sub_plan(sub_plan)

    def _merge_sub_plan(self, sub: QueryPlan) -> None:
        """Fold one shard's plan into the parent aggregates (lock held)."""
        for d in sub.feature_sets:
            mine = self._set_diag(d.set_id)
            mine.nodes_visited += d.nodes_visited
            mine.nodes_pruned += d.nodes_pruned
            mine.entries_pruned += d.entries_pruned
            mine.features_pulled += d.features_pulled
            mine.pull_rounds += d.pull_rounds
            mine.pruned_bounds.merge(d.pruned_bounds)
        if sub.combinations is not None:
            cd = self._combinations()
            cd.released += sub.combinations.released
            cd.rejected_2r += sub.combinations.rejected_2r
            cd.retrievals_skipped += sub.combinations.retrievals_skipped
            cd.pull_rounds += sub.combinations.pull_rounds
            # Trajectories stay per-shard (in the embedded sub-plan) —
            # interleaving them across shards would be meaningless.
        if sub.stds is not None:
            sd = self._stds()
            sd.objects_dropped += sub.stds.objects_dropped
            sd.early_terminations += sub.stds.early_terminations
            sd.chunk_count += sub.stds.chunk_count
            if sub.stds.threshold_final > sd.threshold_final:
                sd.threshold_final = sub.stds.threshold_final
        if sub.voronoi is not None:
            if self._plan.voronoi is None:
                self._plan.voronoi = {
                    "cells_computed": 0,
                    "cell_cache_hits": 0,
                    "empty_intersections": 0,
                }
            for key, value in sub.voronoi.items():
                self._plan.voronoi[key] = (
                    self._plan.voronoi.get(key, 0) + value
                )
        if sub.iss is not None:
            if self._plan.iss is None:
                self._plan.iss = {
                    "bound_probes_point": 0,
                    "bound_probes_node": 0,
                }
            for key, value in sub.iss.items():
                self._plan.iss[key] = self._plan.iss.get(key, 0) + value

    # -- lifecycle ------------------------------------------------------
    def finalize(
        self,
        query,
        algorithm: str,
        pulling: str,
        trace_id: str,
        elapsed_s: float,
        stats,
    ) -> None:
        """Stamp query identity + result stats onto the plan.

        Counter-bearing fields (``objects_scored``, per-set
        ``features_pulled``) are copied from the *same* ``QueryStats``
        the metrics instrumentation reads, so plan counts and registry
        deltas cannot diverge.
        """
        with self._lock:
            plan = self._plan
            plan.trace_id = trace_id
            plan.algorithm = algorithm
            plan.variant = query.variant.value
            plan.pulling = pulling
            plan.k = query.k
            plan.radius = query.radius
            plan.lam = query.lam
            plan.c = query.c
            plan.elapsed_s = elapsed_s
            plan.objects_scored = stats.objects_scored
            if plan.combinations is not None:
                plan.combinations.released = stats.combinations
            if stats.phase_times:
                plan.phase_times = dict(stats.phase_times)

    def plan(self) -> QueryPlan:
        """The accumulated plan (live object; copy if mutating)."""
        return self._plan


class _NullCollector:
    """Shared no-op collector used when EXPLAIN is off.

    Hot paths check ``collector.active`` once per instrumentation point;
    every method is a no-op so a stray un-guarded call is still safe.
    """

    __slots__ = ()

    active = False

    def node_visited(self, set_id, bound) -> None:
        pass

    def node_pruned(self, set_id, bound=None) -> None:
        pass

    def entries_pruned(self, set_id, count=1) -> None:
        pass

    def feature_pulled(self, set_id) -> None:
        pass

    def pull(self, set_id, threshold, next_bound) -> None:
        pass

    def combination(self, score, accepted) -> None:
        pass

    def retrieval_skipped(self, score) -> None:
        pass

    def chunk(self, chunk_id, size, threshold) -> None:
        pass

    def objects_dropped(self, count=1) -> None:
        pass

    def early_termination(self) -> None:
        pass

    def voronoi_cell(self, cache_hit) -> None:
        pass

    def voronoi_empty(self) -> None:
        pass

    def iss_probe(self, point) -> None:
        pass

    def child(self, shard_id) -> "_NullCollector":
        return self

    def shard(self, *args, **kwargs) -> None:
        pass

    def finalize(self, *args, **kwargs) -> None:
        pass

    def plan(self) -> QueryPlan:
        return QueryPlan()


NULL_COLLECTOR = _NullCollector()


def resolve(collector) -> "DiagnosticsCollector | _NullCollector":
    """``collector`` or the shared null collector."""
    return collector if collector is not None else NULL_COLLECTOR


@dataclass(slots=True)
class ExplainReport:
    """What ``QueryProcessor.explain`` returns: plan + ordinary result."""

    plan: QueryPlan
    result: object  # QueryResult (untyped to avoid an import cycle)


# ----------------------------------------------------------------------
# reconciliation helpers (used by the differential tests and the CLI)
# ----------------------------------------------------------------------
def counter_snapshot(registry) -> dict[tuple[str, tuple[str, ...]], float]:
    """Flat ``{(family, label values): value}`` view of all counters."""
    out: dict[tuple[str, tuple[str, ...]], float] = {}
    for family in registry.families():
        if family.type_name != "counter":
            continue
        for labelvalues, child in family.series():
            out[(family.name, labelvalues)] = child.value
    return out


def counter_deltas(before: dict, after: dict) -> dict:
    """Per-series deltas between two :func:`counter_snapshot` maps."""
    deltas: dict[tuple[str, tuple[str, ...]], float] = {}
    for key, value in after.items():
        delta = value - before.get(key, 0.0)
        if delta:
            deltas[key] = delta
    return deltas
