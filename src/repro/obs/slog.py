"""Structured JSON logging that joins on the per-query trace id.

A thin stdlib-``logging`` adapter: :class:`TraceIdFilter` stamps every
record with the trace id active in the calling context (minted by
``QueryProcessor.query``, propagated across executor workers and shard
fan-out), and :class:`JsonFormatter` renders records as one JSON object
per line — so ``grep trace_id logs.jsonl`` lines up with the same id in
Chrome-trace spans (``args.trace_id``) and flight-recorder records.

Usage::

    from repro.obs import slog
    slog.configure(level=logging.INFO)
    log = logging.getLogger("repro.myapp")
    log.info("floor raised", extra={"floor": 0.42})

emits::

    {"ts": ..., "level": "INFO", "logger": "repro.myapp",
     "message": "floor raised", "trace_id": "9f2c...", "floor": 0.42}
"""

from __future__ import annotations

import json
import logging
import sys

from . import tracing as _tracing

#: LogRecord attributes that are plumbing, not user payload.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "module", "msecs",
        "msg", "message", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread",
        "threadName", "trace_id",
    )
)


class TraceIdFilter(logging.Filter):
    """Stamps ``record.trace_id`` from the active query context.

    Attach to a handler (or logger) so every record carries the join
    key; records emitted outside any query get ``"-"``.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "trace_id"):
            record.trace_id = _tracing.current_trace_id() or "-"
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, trace_id,
    plus any ``extra=`` fields the call site attached."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "trace_id": getattr(record, "trace_id", "-"),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in out:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            out[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            out["exc_type"] = record.exc_info[0].__name__
            out["exc_message"] = str(record.exc_info[1])
        return json.dumps(out)


def configure(
    level: int = logging.INFO,
    stream=None,
    logger_name: str = "repro",
) -> logging.Handler:
    """Attach a JSON handler with trace-id stamping to ``logger_name``.

    Idempotent per (logger, stream): a previous handler installed by
    this function on the same logger is replaced, not duplicated.
    Returns the handler (tests capture its stream).
    """
    logger = logging.getLogger(logger_name)
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_slog", False):
            logger.removeHandler(existing)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_slog = True
    handler.setFormatter(JsonFormatter())
    handler.addFilter(TraceIdFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def teardown(logger_name: str = "repro") -> None:
    """Remove handlers previously installed by :func:`configure`."""
    logger = logging.getLogger(logger_name)
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_slog", False):
            logger.removeHandler(existing)


__all__ = [
    "TraceIdFilter",
    "JsonFormatter",
    "configure",
    "teardown",
]
