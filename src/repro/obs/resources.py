"""Process resource sampler: RSS, fds, shm, caches, backpressure.

Latency regressions rarely announce themselves in the query counters
first — they show up as a growing RSS (cache leak), climbing fd counts,
``/dev/shm`` segments that never get unlinked, or an executor queue that
keeps deepening.  :func:`collect` reads those signals and publishes them
as ``repro_resource_*`` gauges; wired as a ``pre_sample`` hook of the
time-series :class:`~repro.obs.timeseries.Sampler`, every ring slot then
carries a consistent point-in-time view of process health next to the
query-rate deltas.

Sources, all stdlib/procfs (no psutil in the image):

* RSS and VM size from ``/proc/self/statm``;
* open fd count from ``/proc/self/fd``;
* shared-memory bytes from the live-segment registry
  :mod:`repro.storage.shm` maintains (owner vs. attached split);
* decoded-node cache occupancy/bytes and buffer-pool pages/bytes from
  the weak instance registries in :mod:`repro.storage.node_cache` /
  :mod:`repro.storage.buffer`;
* executor queue depth and in-flight counts from
  :func:`repro.core.executor.live_executors`;
* thread count from :mod:`threading`, child processes from
  :func:`multiprocessing.active_children`.

Everything degrades to 0 when a source is unavailable (non-Linux, no
live instances); a sampler tick never raises.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

from repro.obs import metrics as _metrics
from repro.obs.timeseries import Sampler, TimeSeriesRing

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

#: Gauge names published by :func:`collect` (used by tests/docs).
GAUGES = (
    "repro_resource_rss_bytes",
    "repro_resource_vm_bytes",
    "repro_resource_open_fds",
    "repro_resource_shm_bytes",
    "repro_resource_shm_segments",
    "repro_resource_node_cache_nodes",
    "repro_resource_node_cache_bytes",
    "repro_resource_buffer_pages",
    "repro_resource_buffer_bytes",
    "repro_resource_executor_queue_depth",
    "repro_resource_executor_running",
    "repro_resource_threads",
    "repro_resource_child_processes",
    "repro_resource_serve_cache_entries",
    "repro_resource_serve_cache_bytes",
    "repro_resource_serve_tenants",
)


def _read_statm() -> tuple[int, int]:
    """(rss_bytes, vm_bytes) from procfs; (0, 0) where unavailable."""
    try:
        with open("/proc/self/statm") as f:
            fields = f.read().split()
        return int(fields[1]) * _PAGE_SIZE, int(fields[0]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0, 0


def _count_fds() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


def collect(reg: "_metrics.MetricsRegistry | None" = None) -> dict:
    """Sample every source and set the gauges; returns the raw values."""
    reg = reg if reg is not None else _metrics.registry()
    rss, vm = _read_statm()

    from repro.core import executor as _executor
    from repro.serve import service as _serve
    from repro.storage import buffer as _buffer
    from repro.storage import node_cache as _node_cache
    from repro.storage import shm as _shm

    segments = _shm.live_segments()
    caches = _node_cache.live_caches()
    pools = _buffer.live_pools()
    executors = _executor.live_executors()
    services = _serve.live_services()

    values = {
        "repro_resource_rss_bytes": rss,
        "repro_resource_vm_bytes": vm,
        "repro_resource_open_fds": _count_fds(),
        "repro_resource_shm_bytes": sum(s for _, s, _ in segments),
        "repro_resource_shm_segments": len(segments),
        "repro_resource_node_cache_nodes": sum(len(c) for c in caches),
        "repro_resource_node_cache_bytes": sum(
            c.estimated_bytes() for c in caches
        ),
        "repro_resource_buffer_pages": sum(len(p) for p in pools),
        "repro_resource_buffer_bytes": sum(
            p.estimated_bytes() for p in pools
        ),
        "repro_resource_executor_queue_depth": sum(
            e.queue_depth for e in executors
        ),
        "repro_resource_executor_running": sum(
            e.running_count for e in executors
        ),
        "repro_resource_threads": threading.active_count(),
        "repro_resource_child_processes": len(
            multiprocessing.active_children()
        ),
        "repro_resource_serve_cache_entries": sum(
            len(s.cache) for s in services
        ),
        "repro_resource_serve_cache_bytes": sum(
            s.cache.estimated_bytes() for s in services
        ),
        "repro_resource_serve_tenants": sum(
            s.quotas.tenant_count() for s in services
        ),
    }
    for name, value in values.items():
        reg.gauge(name, _HELP.get(name, "")).set(float(value))
    return values


_HELP = {
    "repro_resource_rss_bytes": "Resident set size of this process.",
    "repro_resource_vm_bytes": "Virtual memory size of this process.",
    "repro_resource_open_fds": "Open file descriptors.",
    "repro_resource_shm_bytes":
        "Bytes of live SharedMemoryPageFile segments mapped here.",
    "repro_resource_shm_segments":
        "Live SharedMemoryPageFile mappings in this process.",
    "repro_resource_node_cache_nodes":
        "Decoded nodes held across live NodeCache instances.",
    "repro_resource_node_cache_bytes":
        "Estimated heap bytes of cached decoded nodes.",
    "repro_resource_buffer_pages":
        "Pages held across live BufferPool instances.",
    "repro_resource_buffer_bytes":
        "Bytes of cached pages (pages x page size).",
    "repro_resource_executor_queue_depth":
        "Queries submitted but not yet picked up, all executors.",
    "repro_resource_executor_running":
        "Queries currently executing, all executors.",
    "repro_resource_threads": "Live Python threads.",
    "repro_resource_child_processes": "Live multiprocessing children.",
    "repro_resource_serve_cache_entries":
        "Entries across live serving result caches.",
    "repro_resource_serve_cache_bytes":
        "Estimated bytes retained by serving result caches.",
    "repro_resource_serve_tenants":
        "Tenants with live quota buckets, all services.",
}


class ResourceSampler(Sampler):
    """A time-series :class:`Sampler` with :func:`collect` pre-wired.

    ::

        ring = TimeSeriesRing()
        with ResourceSampler(ring, interval_s=1.0):
            ...   # every slot now carries repro_resource_* gauges
    """

    def __init__(
        self, ring: TimeSeriesRing, interval_s: float = 1.0,
        pre_sample=(),
        registry: "_metrics.MetricsRegistry | None" = None,
    ) -> None:
        # Pin the target registry (default: the ring's, falling back to
        # the process default) so gauges land where the ring samples.
        target = registry if registry is not None else ring._registry
        super().__init__(
            ring, interval_s=interval_s,
            pre_sample=(lambda: collect(target), *pre_sample),
        )
