"""Observability layer: phase tracing, metrics registry, and exporters.

The paper argues for its algorithms entirely through cost anatomy — I/O
vs. CPU time, combinations examined, feature objects pulled (Section
8.1).  This package is the runtime counterpart for the grown system:

* :mod:`repro.obs.metrics` — a thread-safe registry of labeled counters,
  gauges and log-bucketed latency histograms (p50/p95/p99);
* :mod:`repro.obs.tracing` — a near-zero-overhead span tracer (disabled
  by default) recording per-query phase timelines and exporting Chrome
  trace-event JSON loadable in Perfetto;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON snapshots,
  and an optional stdlib ``http.server`` scrape endpoint;
* :mod:`repro.obs.explain` — EXPLAIN/ANALYZE query plans: per-set node
  accesses vs. prunes, combination accept/reject decisions, threshold
  trajectories, per-shard fan-out verdicts
  (``QueryProcessor.explain(...)``);
* :mod:`repro.obs.flight` — a bounded ring buffer of slow/failed
  queries (the flight recorder), dumpable to JSONL;
* :mod:`repro.obs.slog` — structured JSON logging that stamps the
  current trace id on every record;
* :mod:`repro.obs.regress` — the perf-regression sentinel comparing
  bench results against committed baselines;
* ``python -m repro.obs`` — run a synthetic workload and emit a metrics
  snapshot plus a trace file; subcommands ``explain`` and ``regress``
  (see :mod:`repro.obs.cli`).

Quick start::

    from repro.obs import tracing, export

    tracing.set_enabled(True)
    result = processor.query(query)          # result.stats.phase_times
    tracing.write_chrome_trace("trace.json")  # open in Perfetto
    print(export.render_prometheus())         # scrape-format metrics

See DESIGN.md §9 for the span taxonomy and how phase names map to the
paper's Algorithms 1-4.
"""

from __future__ import annotations

import logging

from repro.obs import explain, export, flight, metrics, slog, tracing
from repro.obs.explain import (
    DiagnosticsCollector,
    ExplainReport,
    QueryPlan,
)
from repro.obs.export import (
    MetricsServer,
    render_prometheus,
    snapshot,
    write_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    log_buckets,
    registry,
    scoped_registry,
)
from repro.obs.tracing import (
    PhaseRecorder,
    chrome_trace,
    current_trace_id,
    enabled_tracing,
    new_trace_id,
    recorder,
    set_enabled,
    span,
    trace,
    trace_scope,
    write_chrome_trace,
)

logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DiagnosticsCollector",
    "ExplainReport",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseRecorder",
    "QueryPlan",
    "chrome_trace",
    "current_trace_id",
    "enabled_tracing",
    "explain",
    "export",
    "flight",
    "log_buckets",
    "metrics",
    "new_trace_id",
    "recorder",
    "registry",
    "render_prometheus",
    "scoped_registry",
    "set_enabled",
    "slog",
    "snapshot",
    "span",
    "trace",
    "trace_scope",
    "tracing",
    "write_chrome_trace",
    "write_json",
]
