"""Observability layer: phase tracing, metrics registry, and exporters.

The paper argues for its algorithms entirely through cost anatomy — I/O
vs. CPU time, combinations examined, feature objects pulled (Section
8.1).  This package is the runtime counterpart for the grown system:

* :mod:`repro.obs.metrics` — a thread-safe registry of labeled counters,
  gauges and log-bucketed latency histograms (p50/p95/p99);
* :mod:`repro.obs.tracing` — a near-zero-overhead span tracer (disabled
  by default) recording per-query phase timelines and exporting Chrome
  trace-event JSON loadable in Perfetto;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON snapshots,
  and an optional stdlib ``http.server`` scrape endpoint;
* ``python -m repro.obs`` — run a synthetic workload and emit a metrics
  snapshot plus a trace file (see :mod:`repro.obs.cli`).

Quick start::

    from repro.obs import tracing, export

    tracing.set_enabled(True)
    result = processor.query(query)          # result.stats.phase_times
    tracing.write_chrome_trace("trace.json")  # open in Perfetto
    print(export.render_prometheus())         # scrape-format metrics

See DESIGN.md §9 for the span taxonomy and how phase names map to the
paper's Algorithms 1-4.
"""

from __future__ import annotations

import logging

from repro.obs import export, metrics, tracing
from repro.obs.export import (
    MetricsServer,
    render_prometheus,
    snapshot,
    write_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    log_buckets,
    registry,
)
from repro.obs.tracing import (
    PhaseRecorder,
    chrome_trace,
    enabled_tracing,
    recorder,
    set_enabled,
    span,
    trace,
    write_chrome_trace,
)

logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseRecorder",
    "chrome_trace",
    "enabled_tracing",
    "export",
    "log_buckets",
    "metrics",
    "recorder",
    "registry",
    "render_prometheus",
    "set_enabled",
    "snapshot",
    "span",
    "trace",
    "tracing",
    "write_chrome_trace",
    "write_json",
]
