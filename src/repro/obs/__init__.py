"""Observability layer: phase tracing, metrics registry, and exporters.

The paper argues for its algorithms entirely through cost anatomy — I/O
vs. CPU time, combinations examined, feature objects pulled (Section
8.1).  This package is the runtime counterpart for the grown system:

* :mod:`repro.obs.metrics` — a thread-safe registry of labeled counters,
  gauges and log-bucketed latency histograms (p50/p95/p99);
* :mod:`repro.obs.tracing` — a near-zero-overhead span tracer (disabled
  by default) recording per-query phase timelines and exporting Chrome
  trace-event JSON loadable in Perfetto;
* :mod:`repro.obs.export` — Prometheus text exposition, JSON snapshots,
  and an optional stdlib ``http.server`` scrape endpoint;
* :mod:`repro.obs.explain` — EXPLAIN/ANALYZE query plans: per-set node
  accesses vs. prunes, combination accept/reject decisions, threshold
  trajectories, per-shard fan-out verdicts
  (``QueryProcessor.explain(...)``);
* :mod:`repro.obs.flight` — a bounded ring buffer of slow/failed
  queries (the flight recorder), dumpable to JSONL;
* :mod:`repro.obs.slog` — structured JSON logging that stamps the
  current trace id on every record;
* :mod:`repro.obs.regress` — the perf-regression sentinel comparing
  bench results against committed baselines (and recording SLO burn
  rates into the bench history);
* :mod:`repro.obs.timeseries` — a delta-encoded ring of periodic
  registry snapshots: windowed rates and p50/p95/p99 over the last
  N seconds, fed by a background :class:`~repro.obs.timeseries.Sampler`;
* :mod:`repro.obs.slo` — declarative latency/availability SLOs with
  error-budget accounting and multi-window burn-rate alerts evaluated
  against the ring (committed definitions live in ``SLO.json``);
* :mod:`repro.obs.resources` — process-resource gauges (RSS, fds,
  ``/dev/shm`` segments, cache/buffer occupancy, executor queue depth)
  sampled into the same ring;
* :mod:`repro.obs.profiler` — a continuous ``sys._current_frames``
  sampling profiler whose ring is retroactively captured (keyed by
  trace id) whenever the flight recorder admits a slow query; emits
  flamegraph.pl collapsed-stack output;
* :mod:`repro.obs.requests` — W3C ``traceparent`` interop plus a
  byte-bounded, tail-sampled store of served requests with their
  admission-waterfall span trees (``/traces.json`` on the serving
  endpoint);
* ``python -m repro.obs`` — run a synthetic workload and emit a metrics
  snapshot plus a trace file (``--telemetry`` adds the full
  operational layer); subcommands ``explain``, ``regress``, ``watch``,
  ``trace`` and ``slo`` (see :mod:`repro.obs.cli`).

Quick start::

    from repro.obs import tracing, export

    tracing.set_enabled(True)
    result = processor.query(query)          # result.stats.phase_times
    tracing.write_chrome_trace("trace.json")  # open in Perfetto
    print(export.render_prometheus())         # scrape-format metrics

See DESIGN.md §9 for the span taxonomy and how phase names map to the
paper's Algorithms 1-4.
"""

from __future__ import annotations

import logging

from repro.obs import (
    explain,
    export,
    flight,
    metrics,
    profiler,
    requests,
    resources,
    slo,
    slog,
    timeseries,
    tracing,
)
from repro.obs.explain import (
    DiagnosticsCollector,
    ExplainReport,
    QueryPlan,
)
from repro.obs.export import (
    MetricsServer,
    render_openmetrics,
    render_prometheus,
    snapshot,
    timeseries_payload,
    write_json,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.requests import (
    format_traceparent,
    parse_traceparent,
    render_trace_tree,
)
from repro.obs.resources import ResourceSampler
from repro.obs.slo import (
    AvailabilitySLO,
    BurnRateAlert,
    LatencySLO,
    default_slos,
    evaluate_slos,
    load_slos,
)
from repro.obs.timeseries import Sampler, TimeSeriesRing
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    log_buckets,
    registry,
    scoped_registry,
)
from repro.obs.tracing import (
    PhaseRecorder,
    SpanCollector,
    chrome_trace,
    current_trace_id,
    enabled_tracing,
    new_trace_id,
    recorder,
    set_enabled,
    span,
    span_sink,
    trace,
    trace_scope,
    write_chrome_trace,
)

logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "AvailabilitySLO",
    "BurnRateAlert",
    "DEFAULT_LATENCY_BUCKETS",
    "DiagnosticsCollector",
    "ExplainReport",
    "LatencySLO",
    "MetricsRegistry",
    "MetricsServer",
    "PhaseRecorder",
    "QueryPlan",
    "ResourceSampler",
    "Sampler",
    "SamplingProfiler",
    "SpanCollector",
    "TimeSeriesRing",
    "chrome_trace",
    "default_slos",
    "evaluate_slos",
    "load_slos",
    "current_trace_id",
    "enabled_tracing",
    "explain",
    "export",
    "flight",
    "format_traceparent",
    "log_buckets",
    "metrics",
    "new_trace_id",
    "parse_traceparent",
    "profiler",
    "recorder",
    "registry",
    "render_openmetrics",
    "render_prometheus",
    "render_trace_tree",
    "requests",
    "resources",
    "scoped_registry",
    "set_enabled",
    "slo",
    "slog",
    "snapshot",
    "span",
    "span_sink",
    "timeseries",
    "timeseries_payload",
    "trace",
    "trace_scope",
    "tracing",
    "write_chrome_trace",
    "write_json",
]
