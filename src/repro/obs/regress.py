"""Perf-regression sentinel: compare bench results against baselines.

The repo commits benchmark result documents (``BENCH_executor.json``,
``BENCH_shards.json``) produced by the scripts in ``benchmarks/``.  This
module compares a *current* run against a *baseline* document and emits
a machine-readable verdict that CI gates on, plus an append-only history
line (``BENCH_history.jsonl``) so perf over time is greppable.

Two comparison modes, chosen automatically per pair:

* **matched** — the two documents ran the same workload shape
  (machine-independent config keys agree).  Ratio rules apply: every
  tracked *relative* metric (speedups, throughput) of the current run
  must stay within :data:`RATIO_TOLERANCE` of the baseline.  Speedups
  are self-normalizing (baseline and optimized paths are timed on the
  same machine in the same process), so the ratio survives machine
  changes that absolute latencies would not.
* **floor** — workload shapes differ (e.g. a CI smoke run vs. the
  committed full-size baseline).  Absolute floors apply instead: the
  hot path must still show a real speedup
  (:data:`EXECUTOR_SPEEDUP_FLOOR`) and shard scaling must still scale
  (:data:`SHARD_SPEEDUP_FLOOR` on the headline algorithm at 4 shards).

Noise tolerance is deliberately generous (a 45% speedup drop passes a
ratio check) — the sentinel exists to catch structural regressions
(a 2x slowdown from an accidental cache bypass), not 10% jitter on a
shared CI box.

Use::

    python -m repro.obs regress \
        --pair BENCH_executor.json current_executor.json \
        --pair BENCH_shards.json current_shards.json \
        --history BENCH_history.jsonl --verdict sentinel_verdict.json

Exit status 0 iff every pair passes; the verdict JSON carries the full
per-check breakdown either way.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

#: Schema version of both the verdict document and history records.
SENTINEL_SCHEMA_VERSION = 1

#: Matched mode: current relative metric must be >= baseline * this.
RATIO_TOLERANCE = 0.55
#: Floor mode: minimum per-algorithm hot-path speedup (executor bench).
EXECUTOR_SPEEDUP_FLOOR = 1.2
#: Floor mode: minimum headline-algorithm speedup_cold at 4 shards.
SHARD_SPEEDUP_FLOOR = 1.3
#: Floor mode: minimum process-fanout cold speedup over thread fan-out
#: at 4 shards.  Only meaningful with real cores to spread across, so
#: it gates only when the run's machine had >= PROCESS_FANOUT_MIN_CPUS.
PROCESS_FANOUT_SPEEDUP_FLOOR = 1.5
PROCESS_FANOUT_MIN_CPUS = 4
#: Floor mode, serving bench: minimum sustained QPS under zipf load.
SERVE_QPS_FLOOR = 100.0
#: Floor mode, serving bench: minimum result-cache hit rate under the
#: zipf-skewed key distribution (s=1.1).
SERVE_CACHE_HIT_FLOOR = 0.5
#: Floor mode, serving bench: headroom/isolation ratios must be >= 1
#: (p99 under the SLO target; victim p99 within 1.2x its solo run).
SERVE_RATIO_FLOOR = 1.0

#: Config keys that describe the machine, not the workload — two runs
#: differing only in these still compare in matched mode.
MACHINE_CONFIG_KEYS = frozenset(
    {"python", "cpus", "workers", "numpy_fast_path"}
)


def load_doc(path: str | Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def workload_config(doc: dict) -> dict:
    """The machine-independent part of a bench document's config."""
    return {
        key: value
        for key, value in doc.get("config", {}).items()
        if key not in MACHINE_CONFIG_KEYS
    }


def extract_metrics(doc: dict) -> dict[str, dict[str, float]]:
    """``{unit: {metric: value}}`` of the tracked relative metrics.

    Units are ``executor/<algorithm>`` or ``shards/<algorithm>``; only
    machine-portable metrics (speedup ratios, throughput) are tracked —
    absolute wall times are recorded in history but never gated on.
    """
    bench = doc.get("benchmark", "")
    out: dict[str, dict[str, float]] = {}
    if bench == "executor-hot-path":
        for row in doc.get("results", []):
            unit = f"executor/{row['algorithm']}"
            metrics = {}
            for key in ("speedup", "speedup_warm", "throughput_qps"):
                if key in row:
                    metrics[key] = float(row[key])
            out[unit] = metrics
    elif bench == "shard-scaling":
        for row in doc.get("results", []):
            unit = f"shards/{row['algorithm']}"
            metrics = {}
            value = row.get("speedup_cold_s4")
            if value is None:
                for srow in row.get("shards", []):
                    if srow.get("shards") == 4:
                        value = srow.get("speedup_cold")
            if value is not None:
                metrics["speedup_cold_s4"] = float(value)
            out[unit] = metrics
        process = doc.get("process_mode")
        if process:
            metrics = {}
            for key in ("speedup_cold_s4", "cold_speedup_vs_threads_s4"):
                value = process.get(key)
                if value is not None:
                    metrics[key] = float(value)
            out[f"shards/process/{process.get('algorithm', 'stps')}"] = (
                metrics
            )
    elif bench == "serve-load":
        load = doc.get("load", {})
        metrics = {}
        for key in ("sustained_qps", "cache_hit_rate", "p99_slo_headroom"):
            if key in load:
                metrics[key] = float(load[key])
        out["serve/load"] = metrics
        quota = doc.get("quota", {})
        if "victim_isolation" in quota:
            out["serve/quota"] = {
                "victim_isolation": float(quota["victim_isolation"])
            }
    return out


def doc_cpus(doc: dict) -> int:
    """CPU count the document's run saw (0 when unrecorded)."""
    try:
        return int(doc.get("config", {}).get("cpus") or 0)
    except (TypeError, ValueError):
        return 0


def _is_process_unit(unit: str) -> bool:
    return unit.startswith("shards/process/")


def _check(unit, metric, rule, threshold, baseline, current) -> dict:
    return {
        "unit": unit,
        "metric": metric,
        "rule": rule,
        "threshold": round(threshold, 4),
        "baseline": baseline,
        "current": current,
        "ok": current >= threshold,
    }


def compare_docs(baseline: dict, current: dict) -> dict:
    """One pair's verdict: mode, per-check outcomes, overall ok."""
    bench = current.get("benchmark", "")
    if baseline.get("benchmark", "") != bench:
        return {
            "benchmark": bench,
            "mode": "invalid",
            "ok": False,
            "error": (
                f"benchmark type mismatch: baseline is "
                f"{baseline.get('benchmark')!r}, current is {bench!r}"
            ),
            "checks": [],
        }
    matched = workload_config(baseline) == workload_config(current)
    base_metrics = extract_metrics(baseline)
    cur_metrics = extract_metrics(current)
    checks: list[dict] = []

    enough_cpus = (
        min(doc_cpus(baseline), doc_cpus(current))
        >= PROCESS_FANOUT_MIN_CPUS
    )

    if matched:
        mode = "matched"
        for unit, metrics in base_metrics.items():
            if _is_process_unit(unit) and not enough_cpus:
                # Process fan-out numbers on a <4-CPU box measure
                # dispatch overhead, not parallelism; recorded in the
                # doc, never gated.
                checks.append({
                    "unit": unit,
                    "metric": "speedup_cold_s4",
                    "rule": "skipped-cpus",
                    "baseline": metrics.get("speedup_cold_s4"),
                    "current": cur_metrics.get(unit, {}).get(
                        "speedup_cold_s4"
                    ),
                    "ok": True,
                })
                continue
            for metric, base_value in metrics.items():
                cur_value = cur_metrics.get(unit, {}).get(metric)
                if cur_value is None:
                    checks.append({
                        "unit": unit,
                        "metric": metric,
                        "rule": "present",
                        "baseline": base_value,
                        "current": None,
                        "ok": False,
                    })
                    continue
                checks.append(_check(
                    unit, metric, "ratio",
                    base_value * RATIO_TOLERANCE, base_value, cur_value,
                ))
    else:
        mode = "floor"
        if bench == "executor-hot-path":
            for unit, metrics in cur_metrics.items():
                if "speedup" in metrics:
                    checks.append(_check(
                        unit, "speedup", "floor",
                        EXECUTOR_SPEEDUP_FLOOR,
                        base_metrics.get(unit, {}).get("speedup"),
                        metrics["speedup"],
                    ))
        elif bench == "shard-scaling":
            headline = current.get("headline_algorithm", "stps")
            unit = f"shards/{headline}"
            value = cur_metrics.get(unit, {}).get("speedup_cold_s4")
            if value is not None:
                checks.append(_check(
                    unit, "speedup_cold_s4", "floor",
                    SHARD_SPEEDUP_FLOOR,
                    base_metrics.get(unit, {}).get("speedup_cold_s4"),
                    value,
                ))
            process_unit = f"shards/process/{headline}"
            process_value = cur_metrics.get(process_unit, {}).get(
                "cold_speedup_vs_threads_s4"
            )
            if process_value is not None:
                if doc_cpus(current) >= PROCESS_FANOUT_MIN_CPUS:
                    checks.append(_check(
                        process_unit, "cold_speedup_vs_threads_s4",
                        "floor", PROCESS_FANOUT_SPEEDUP_FLOOR,
                        base_metrics.get(process_unit, {}).get(
                            "cold_speedup_vs_threads_s4"
                        ),
                        process_value,
                    ))
                else:
                    checks.append({
                        "unit": process_unit,
                        "metric": "cold_speedup_vs_threads_s4",
                        "rule": "skipped-cpus",
                        "baseline": base_metrics.get(
                            process_unit, {}
                        ).get("cold_speedup_vs_threads_s4"),
                        "current": process_value,
                        "ok": True,
                    })
        elif bench == "serve-load":
            floors = {
                ("serve/load", "sustained_qps"): SERVE_QPS_FLOOR,
                ("serve/load", "cache_hit_rate"): SERVE_CACHE_HIT_FLOOR,
                ("serve/load", "p99_slo_headroom"): SERVE_RATIO_FLOOR,
                ("serve/quota", "victim_isolation"): SERVE_RATIO_FLOOR,
            }
            for (unit, metric), floor in floors.items():
                value = cur_metrics.get(unit, {}).get(metric)
                if value is not None:
                    checks.append(_check(
                        unit, metric, "floor", floor,
                        base_metrics.get(unit, {}).get(metric), value,
                    ))
    if not checks:
        return {
            "benchmark": bench,
            "mode": mode,
            "ok": False,
            "error": "no comparable metrics found",
            "checks": [],
        }
    return {
        "benchmark": bench,
        "mode": mode,
        "ok": all(c["ok"] for c in checks),
        "checks": checks,
    }


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def slo_history_fields(verdict: dict) -> dict:
    """Compress an ``evaluate_slos`` verdict into history-record fields.

    Burn rates ride along in ``BENCH_history.jsonl`` so error-budget
    trends are greppable next to the perf trends (never gated on here —
    ``python -m repro.obs slo`` is the gate).
    """
    slos: dict[str, dict] = {}
    for v in verdict.get("slos", []):
        slos[v["slo"]] = {
            "objective": v.get("objective"),
            "budget_consumed_fraction": (
                v.get("error_budget", {}).get("consumed_fraction")
            ),
            "exhausted": v.get("error_budget", {}).get("exhausted"),
            "firing": v.get("firing"),
            "burn_rates": {
                a["name"]: {
                    "long": a.get("long_burn_rate"),
                    "short": a.get("short_burn_rate"),
                    "firing": a.get("firing"),
                }
                for a in v.get("alerts", [])
            },
        }
    return {
        "ok": verdict.get("ok"),
        "firing": verdict.get("firing"),
        "exhausted": verdict.get("exhausted"),
        "slos": slos,
    }


def history_record(
    pairs: list[dict],
    timestamp: str | None = None,
    slo: dict | None = None,
) -> dict:
    """One append-only JSONL line summarizing a sentinel run."""
    record = {
        "schema_version": SENTINEL_SCHEMA_VERSION,
        "timestamp": timestamp or time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
        "git_sha": git_sha(),
        "ok": all(p["ok"] for p in pairs),
        "pairs": [
            {
                "benchmark": p["benchmark"],
                "mode": p["mode"],
                "ok": p["ok"],
                "metrics": {
                    f"{c['unit']}:{c['metric']}": c["current"]
                    for c in p["checks"]
                },
            }
            for p in pairs
        ],
    }
    if slo is not None:
        record["slo"] = slo
    return record


def append_history(path: str | Path, record: dict) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs regress",
        description="Compare bench results against committed baselines.",
    )
    parser.add_argument(
        "--pair", nargs=2, action="append", default=None,
        metavar=("BASELINE", "CURRENT"),
        help="baseline and current bench JSON documents (repeatable; "
             "optional when --slo-verdict is given)",
    )
    parser.add_argument(
        "--slo-verdict", default=None, metavar="PATH",
        help="an evaluate_slos verdict JSON (e.g. slo_verdict.json from "
             "a --telemetry run); its burn-rate fields are merged into "
             "the history record (recorded, never gated)",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="append a summary record to this JSONL file",
    )
    parser.add_argument(
        "--verdict", default=None, metavar="PATH",
        help="write the full verdict JSON here (stdout summary always)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.pair and not args.slo_verdict:
        parser.error("need at least one --pair (or --slo-verdict)")
    slo_fields = None
    if args.slo_verdict:
        try:
            slo_fields = slo_history_fields(load_doc(args.slo_verdict))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"sentinel: cannot read SLO verdict: {exc}")
            return 1
    pairs: list[dict] = []
    for baseline_path, current_path in args.pair or []:
        try:
            baseline = load_doc(baseline_path)
            current = load_doc(current_path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"sentinel: cannot read bench document: {exc}")
            return 1
        verdict = compare_docs(baseline, current)
        verdict["baseline_path"] = str(baseline_path)
        verdict["current_path"] = str(current_path)
        pairs.append(verdict)

    ok = all(p["ok"] for p in pairs)
    doc = {
        "schema_version": SENTINEL_SCHEMA_VERSION,
        "ok": ok,
        "pairs": pairs,
    }
    if slo_fields is not None:
        doc["slo"] = slo_fields
    if args.verdict:
        with open(args.verdict, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    if args.history:
        append_history(args.history, history_record(pairs, slo=slo_fields))

    for pair in pairs:
        status = "OK  " if pair["ok"] else "FAIL"
        print(
            f"[{status}] {pair['benchmark']} ({pair['mode']}) "
            f"{pair['baseline_path']} vs {pair['current_path']}"
        )
        for check in pair["checks"]:
            mark = "ok" if check["ok"] else "REGRESSION"
            base = check.get("baseline")
            base_s = f"{base:.2f}" if isinstance(base, (int, float)) else "-"
            cur = check.get("current")
            cur_s = f"{cur:.2f}" if isinstance(cur, (int, float)) else "-"
            threshold = check.get("threshold")
            thr_s = (
                f" (>= {threshold:.2f})" if threshold is not None else ""
            )
            print(
                f"    {mark:>10}  {check['unit']}:{check['metric']}  "
                f"baseline={base_s} current={cur_s}{thr_s}"
            )
        if pair.get("error"):
            print(f"    error: {pair['error']}")
    if slo_fields is not None:
        for name, row in slo_fields["slos"].items():
            state = (
                "FIRING" if row["firing"]
                else "EXHAUSTED" if row["exhausted"]
                else "ok"
            )
            fraction = row["budget_consumed_fraction"]
            print(
                f"    slo {name}: {state} "
                f"(budget {fraction:.1%} consumed)"
                if fraction is not None
                else f"    slo {name}: {state}"
            )
    print(f"sentinel: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
