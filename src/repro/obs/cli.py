"""``python -m repro.obs`` — run a workload, emit metrics + a trace.

Builds a synthetic dataset, runs a repeated-query workload through the
instrumented query stack with tracing enabled, and writes three
artifacts:

* a Chrome trace-event JSON (``--trace-out``, default
  ``obs_trace.json``) — open it in Perfetto / ``chrome://tracing`` to
  see the per-query phase timeline across executor worker threads;
* a Prometheus text-exposition snapshot (``--metrics-out``, default
  ``obs_metrics.prom``) with the query latency histograms labeled by
  algorithm / variant / pulling strategy;
* a JSON metrics snapshot (``--json-out``, default
  ``obs_metrics.json``) including p50/p95/p99 summaries.

``--smoke`` shrinks everything to a seconds-scale run for CI.
``--serve PORT`` additionally exposes a live ``/metrics`` scrape
endpoint until interrupted.  ``--no-trace`` runs metrics-only (useful
for overhead measurements).

Run::

    PYTHONPATH=src python -m repro.obs --smoke --out-dir obs_out

``--telemetry`` turns on the full operational layer for the run: a
:class:`~repro.obs.timeseries.TimeSeriesRing` fed by the resource
sampler, exemplars on latency histograms, the continuous profiler with
flight-recorder-triggered captures, and four extra artifacts
(``timeseries.json``, ``dashboard.html``, ``flamegraph.txt``,
``slo_verdict.json``).  With ``--serve`` the endpoint also exposes
``/dashboard``, ``/timeseries.json``, ``/openmetrics``,
``/flight.json`` and ``/flamegraph.txt``.

Subcommands ride alongside the workload runner:

* ``python -m repro.obs explain`` — EXPLAIN/ANALYZE one query against a
  synthetic dataset and print the plan (table or ``--json``);
* ``python -m repro.obs regress`` — the perf-regression sentinel (see
  :mod:`repro.obs.regress`);
* ``python -m repro.obs watch`` — live terminal view polling a running
  server's ``/timeseries.json``;
* ``python -m repro.obs trace [<id>]`` — list the tail-sampled request
  trace store (in-process, ``--url`` against a running server's
  ``/traces.json``, or a ``--file`` JSONL dump) or print one trace's
  span tree;
* ``python -m repro.obs slo`` — run a workload and evaluate committed
  SLO definitions against it; exits non-zero on an exhausted error
  budget (or a firing burn-rate alert with ``--fail-on any``).
"""

from __future__ import annotations

import argparse
import json
import logging
import time
from pathlib import Path

from repro.obs import export, flight, metrics, tracing

logger = logging.getLogger(__name__)

DEFAULT_ALGORITHMS = ("stps", "stds")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--smoke", action="store_true", help="seconds-scale run")
    parser.add_argument("--out-dir", type=Path, default=Path("."),
                        help="directory for all artifacts (created if missing)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="Chrome trace-event JSON path "
                             "(default <out-dir>/obs_trace.json)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="Prometheus text snapshot path "
                             "(default <out-dir>/obs_metrics.prom)")
    parser.add_argument("--json-out", type=Path, default=None,
                        help="JSON metrics snapshot path "
                             "(default <out-dir>/obs_metrics.json)")
    parser.add_argument("--objects", type=int, default=8000)
    parser.add_argument("--features", type=int, default=4000,
                        help="features per feature set")
    parser.add_argument("--sets", type=int, default=2, help="feature sets")
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--queries", type=int, default=12,
                        help="distinct queries in the workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="workload repetitions (warm-cache traffic)")
    parser.add_argument("--workers", type=int, default=4,
                        help="executor worker threads")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--algorithms", nargs="+",
                        default=list(DEFAULT_ALGORITHMS),
                        choices=["stps", "stds", "iss"])
    parser.add_argument("--no-trace", action="store_true",
                        help="skip tracing (metrics snapshot only)")
    parser.add_argument("--verbose-trace", action="store_true",
                        help="also record per-event cache-activity instants")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve /metrics on PORT until interrupted")
    parser.add_argument("--flight-out", type=Path, default=None,
                        metavar="PATH",
                        help="record every query in the flight recorder "
                             "(latency threshold 0) and dump JSONL here")
    parser.add_argument("--telemetry", action="store_true",
                        help="full operational layer: time-series ring + "
                             "resource sampler + exemplars + triggered "
                             "profiler + SLO verdict; writes "
                             "timeseries.json, dashboard.html, "
                             "flamegraph.txt, slo_verdict.json")
    parser.add_argument("--slo-file", type=Path, default=None,
                        help="SLO definitions JSON for --telemetry "
                             "(default: built-in SLOs)")
    parser.add_argument("--sample-interval", type=float, default=0.25,
                        help="telemetry ring sampling interval in seconds")
    parser.add_argument("--log-level", default=None,
                        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
                        help="configure stdlib logging to stderr")
    return parser


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs explain",
        description="EXPLAIN/ANALYZE one query on a synthetic dataset.",
    )
    parser.add_argument("--algorithm", default="stps",
                        choices=["stps", "stds", "iss"])
    parser.add_argument("--pulling", default="prioritized",
                        choices=["prioritized", "round_robin"])
    parser.add_argument("--variant", default="range",
                        choices=["range", "influence", "nearest"])
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.02)
    parser.add_argument("--objects", type=int, default=2000)
    parser.add_argument("--features", type=int, default=1000,
                        help="features per feature set")
    parser.add_argument("--sets", type=int, default=2, help="feature sets")
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, default=0,
                        help="fan the query out over N shards (0 = unsharded)")
    parser.add_argument("--json", action="store_true",
                        help="print the plan as JSON instead of a table")
    return parser


def run_explain(args) -> int:
    """Build a synthetic dataset, EXPLAIN one query, print the plan."""
    from repro.core.processor import QueryProcessor
    from repro.core.query import Variant
    from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
    from repro.data.workload import WorkloadSpec, make_workload

    objects = synthetic_objects(args.objects, seed=args.seed)
    feature_sets = synthetic_feature_sets(
        args.sets, args.features, args.vocab, seed=args.seed + 1
    )
    spec = WorkloadSpec(
        n_queries=1, k=args.k, radius=args.radius, seed=args.seed + 7,
    )
    query = make_workload(feature_sets, spec)[0]
    variant = Variant(args.variant)
    if args.algorithm == "iss":
        variant = Variant.INFLUENCE
    query = query.with_variant(variant)

    if args.shards > 0:
        from repro.shard import ShardedQueryProcessor

        processor = ShardedQueryProcessor.build(
            objects, feature_sets, shards=args.shards,
            radius=max(args.radius, 0.05),
            replication="halo" if variant is Variant.RANGE else "full",
        )
        with processor:
            report = processor.explain(
                query, algorithm=args.algorithm, pulling=args.pulling
            )
    else:
        processor = QueryProcessor.build(objects, feature_sets)
        report = processor.explain(
            query, algorithm=args.algorithm, pulling=args.pulling
        )
    print(report.plan.to_json() if args.json else report.plan.render())
    return 0


def build_watch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs watch",
        description="Live terminal view of a running telemetry endpoint.",
    )
    parser.add_argument("--url", required=True,
                        help="base URL of a MetricsServer started with a "
                             "time-series ring, e.g. http://127.0.0.1:9100")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N polls (0 = until interrupted)")
    return parser


def render_watch(payload: dict) -> str:
    """Render one ``/timeseries.json`` payload as a terminal snapshot.

    Pure function (no I/O) so tests can assert on the layout directly.
    """
    lines = [
        f"repro telemetry — {payload.get('slots', 0)}/"
        f"{payload.get('capacity', 0)} slots, "
        f"{payload.get('samples_taken', 0)} samples",
        "",
        f"  {'window':>8}  {'span':>7}  {'qps':>8}  "
        f"{'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}",
    ]
    windows = payload.get("windows", {})
    for key in sorted(windows, key=int):
        win = windows[key]
        rate = (win.get("rates") or {}).get("repro_queries_total")
        hist = (win.get("hist") or {}).get("repro_query_seconds") or {}

        def _ms(value):
            return f"{value * 1e3:8.2f}" if value is not None else f"{'-':>8}"

        rate_s = f"{rate:8.1f}" if rate is not None else f"{'-':>8}"
        lines.append(
            f"  {key + 's':>8}  {win.get('span_s', 0.0):6.1f}s  {rate_s}  "
            f"{_ms(hist.get('p50'))}  {_ms(hist.get('p95'))}  "
            f"{_ms(hist.get('p99'))}"
        )
    timeline = payload.get("timeline") or []
    gauges = (timeline[-1].get("gauges") if timeline else None) or {}
    if gauges:
        lines.append("")
        lines.append("  resources:")
        for name in sorted(gauges):
            value = gauges[name]
            short = name.removeprefix("repro_resource_")
            if name.endswith("_bytes") and value is not None:
                shown = f"{value / (1 << 20):.1f} MiB"
            elif value is None:
                shown = "-"
            else:
                shown = f"{value:.0f}"
            lines.append(f"    {short:<24} {shown}")
    verdicts = (payload.get("slo") or {}).get("slos") or []
    if verdicts:
        lines.append("")
        lines.append("  SLOs:")
        for verdict in verdicts:
            budget = verdict["error_budget"]
            state = (
                "FIRING" if verdict["firing"]
                else "EXHAUSTED" if budget["exhausted"]
                else "ok"
            )
            lines.append(
                f"    {verdict['slo']:<28} {state:<10} "
                f"budget {budget['consumed_fraction']:6.1%} used "
                f"({budget['consumed']:.0f}/{budget['total']:.1f})"
            )
    return "\n".join(lines) + "\n"


def run_watch(args) -> int:
    """Poll ``<url>/timeseries.json`` and redraw a terminal snapshot."""
    import sys
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/timeseries.json"
    shown = 0
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=5) as resp:
                    payload = json.load(resp)
            except (urllib.error.URLError, OSError) as exc:
                print(f"watch: cannot reach {url}: {exc}", file=sys.stderr)
                return 1
            print(clear + render_watch(payload), end="", flush=True)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs trace",
        description="Inspect stored request traces: list the tail-"
                    "sampled store, or print one trace's span tree.",
    )
    parser.add_argument("trace_id", nargs="?", default=None,
                        help="trace id to print (16- or 32-hex; omit to "
                             "list stored traces)")
    parser.add_argument("--url", default=None,
                        help="base URL of a running server exposing "
                             "/traces.json, e.g. http://127.0.0.1:8080")
    parser.add_argument("--file", type=Path, default=None,
                        help="read traces from a JSONL dump instead of "
                             "a server (repro.obs.requests.dump_jsonl)")
    parser.add_argument("--tenant", default=None,
                        help="only traces of this tenant")
    parser.add_argument("--min-ms", type=float, default=None,
                        help="only traces at least this slow")
    parser.add_argument("--json", action="store_true",
                        help="print raw JSON instead of rendered output")
    return parser


def _fetch_traces(args) -> list[dict]:
    """Stored traces from --url, --file, or the in-process store."""
    from repro.obs import requests as requests_mod

    if args.url is not None:
        import urllib.parse
        import urllib.request

        params = {}
        if args.trace_id:
            params["trace_id"] = args.trace_id
        if args.tenant:
            params["tenant"] = args.tenant
        if args.min_ms is not None:
            params["min_ms"] = args.min_ms
        url = args.url.rstrip("/") + "/traces.json"
        if params:
            url += "?" + urllib.parse.urlencode(params)
        with urllib.request.urlopen(url, timeout=5) as resp:
            return json.load(resp).get("traces", [])
    if args.file is not None:
        traces = [
            json.loads(line)
            for line in args.file.read_text().splitlines()
            if line.strip()
        ]
    else:
        traces = requests_mod.query_traces(limit=10_000)
    wanted = (
        requests_mod.w3c_trace_id(args.trace_id) if args.trace_id else None
    )
    out = []
    for trace in traces:
        if wanted is not None and requests_mod.w3c_trace_id(
            trace.get("trace_id", "")
        ) != wanted:
            continue
        if args.tenant is not None and trace.get("tenant") != args.tenant:
            continue
        if (
            args.min_ms is not None
            and trace.get("duration_s", 0.0) * 1e3 < args.min_ms
        ):
            continue
        out.append(trace)
    return out


def run_trace(args) -> int:
    """``python -m repro.obs trace [<id>]`` — tree view / listing."""
    import sys
    import urllib.error

    from repro.obs import requests as requests_mod

    try:
        traces = _fetch_traces(args)
    except (urllib.error.URLError, OSError) as exc:
        print(f"trace: cannot fetch traces: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(traces, indent=2))
        return 0 if traces else 1
    if args.trace_id is not None:
        if not traces:
            print(f"trace: no stored trace {args.trace_id!r}",
                  file=sys.stderr)
            return 1
        for trace in traces:
            print(requests_mod.render_trace_tree(trace), end="")
        return 0
    if not traces:
        print("trace: store is empty (is repro.obs.requests enabled?)")
        return 0
    print(f"  {'trace_id':<32}  {'tenant':<12}  {'outcome':<12}  "
          f"{'status':>6}  {'ms':>9}  kept")
    for trace in traces:
        print(
            f"  {trace.get('trace_id', '?'):<32}  "
            f"{trace.get('tenant', '?'):<12}  "
            f"{trace.get('outcome', '?'):<12}  "
            f"{trace.get('status', 0):>6}  "
            f"{trace.get('duration_s', 0.0) * 1e3:>9.2f}  "
            f"{trace.get('keep_reason', '?')}"
        )
    return 0


def build_slo_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs slo",
        description="Run a workload and evaluate SLO definitions "
                    "against it; non-zero exit on exhausted budget.",
    )
    parser.add_argument("--smoke", action="store_true", help="seconds-scale run")
    parser.add_argument("--slo-file", type=Path, default=None,
                        help="SLO definitions JSON (default: built-in SLOs; "
                             "the repo commits SLO.json)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the machine-readable verdict JSON here")
    parser.add_argument("--fail-on", default="exhausted",
                        choices=["exhausted", "firing", "any"],
                        help="what makes the exit status non-zero")
    parser.add_argument("--objects", type=int, default=8000)
    parser.add_argument("--features", type=int, default=4000)
    parser.add_argument("--sets", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--algorithms", nargs="+",
                        default=list(DEFAULT_ALGORITHMS),
                        choices=["stps", "stds", "iss"])
    parser.add_argument("--sample-interval", type=float, default=0.25,
                        help="ring sampling interval in seconds")
    return parser


def _load_slos(path):
    from repro.obs.slo import default_slos, load_slos

    return load_slos(path) if path is not None else default_slos()


def run_slo(args) -> int:
    """Run the workload, evaluate SLOs over the run's ring, verdict out."""
    import sys

    from repro.obs.slo import evaluate_slos
    from repro.obs.resources import ResourceSampler
    from repro.obs.timeseries import TimeSeriesRing

    if args.smoke:
        _apply_smoke(args)
    slos = _load_slos(args.slo_file)
    ring = TimeSeriesRing()
    with ResourceSampler(ring, interval_s=args.sample_interval):
        run_workload(args)
    verdict = evaluate_slos(slos, ring)
    print(json.dumps(verdict, indent=2))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(verdict, indent=2) + "\n")
    failed = {
        "exhausted": verdict["exhausted"],
        "firing": verdict["firing"],
        "any": verdict["exhausted"] or verdict["firing"],
    }[args.fail_on]
    if failed:
        print(
            f"SLO verdict: FAILED (--fail-on {args.fail_on})",
            file=sys.stderr,
        )
        return 1
    return 0


def _apply_smoke(args) -> None:
    args.objects = min(args.objects, 2000)
    args.features = min(args.features, 1000)
    args.queries = min(args.queries, 6)
    args.repeats = min(args.repeats, 2)


def _publish_index_gauges(processor, registry: metrics.MetricsRegistry) -> None:
    """Export per-tree I/O + cache counters as labeled gauges."""
    io_reads = registry.gauge(
        "repro_index_io_reads", "Physical page reads per tree.", ("tree",)
    )
    buffer_hits = registry.gauge(
        "repro_index_buffer_hits", "Buffer-pool hits per tree.", ("tree",)
    )
    nc_hits = registry.gauge(
        "repro_index_node_cache_hits",
        "Decoded-node cache hits per tree.",
        ("tree",),
    )
    nc_rate = registry.gauge(
        "repro_index_node_cache_hit_rate",
        "Decoded-node cache hit rate per tree.",
        ("tree",),
    )
    trees = [("objects", processor.object_tree)] + [
        (f"features_{i}", t) for i, t in enumerate(processor.feature_trees)
    ]
    for name, tree in trees:
        io_reads.labels(tree=name).set(tree.stats.reads)
        buffer_hits.labels(tree=name).set(tree.stats.buffer_hits)
        nc_hits.labels(tree=name).set(tree.node_cache.hits)
        nc_rate.labels(tree=name).set(tree.node_cache.hit_rate)


def run_workload(args) -> dict:
    """Build indexes, run the workload, return a summary dict."""
    # Imports are local so ``--help`` never pays the numpy/index cost.
    from repro.core.executor import QueryExecutor
    from repro.core.processor import QueryProcessor
    from repro.core.query import Variant
    from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
    from repro.data.workload import WorkloadSpec, make_workload

    logger.info(
        "building synthetic dataset: %d objects, %d x %d features",
        args.objects, args.sets, args.features,
    )
    objects = synthetic_objects(args.objects, seed=args.seed)
    feature_sets = synthetic_feature_sets(
        args.sets, args.features, args.vocab, seed=args.seed + 1
    )
    processor = QueryProcessor.build(objects, feature_sets, index="srt")
    spec = WorkloadSpec(
        n_queries=args.queries, k=args.k, radius=args.radius,
        seed=args.seed + 7,
    )
    queries = make_workload(feature_sets, spec)
    workload = queries * args.repeats

    # Start cold so the trace captures R-tree node expansion (building the
    # indexes leaves every decoded node cached, which would otherwise hide
    # ``rtree.node_expand`` spans behind a 100% node-cache hit rate).
    processor.clear_buffers()
    processor.reset_stats(metrics=False)

    summary: dict = {"algorithms": {}}
    with QueryExecutor(processor, max_workers=args.workers) as executor:
        for algorithm in args.algorithms:
            batch = workload
            if algorithm == "iss":
                batch = [q.with_variant(Variant.INFLUENCE) for q in workload]
            t0 = time.perf_counter()
            report = executor.run(batch, algorithm=algorithm)
            wall = time.perf_counter() - t0
            phase_totals: dict[str, float] = {}
            for result in report.results:
                for phase, seconds in result.stats.phase_times.items():
                    phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
            summary["algorithms"][algorithm] = {
                "queries": report.queries,
                "wall_s": round(wall, 4),
                "throughput_qps": round(report.throughput_qps, 1),
                "latency_p50_s": round(report.latency_p50_s, 6),
                "latency_p95_s": round(report.latency_p95_s, 6),
                "latency_p99_s": round(report.latency_p99_s, 6),
                "queue_wait_p95_s": round(report.queue_wait_p95_s, 6),
                "node_cache_hit_rate": round(report.node_cache_hit_rate, 4),
                "phase_times_s": {
                    k: round(v, 4) for k, v in sorted(phase_totals.items())
                },
            }
    _publish_index_gauges(processor, metrics.registry())
    return summary


def main(argv=None) -> int:
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return run_explain(build_explain_parser().parse_args(argv[1:]))
    if argv and argv[0] == "regress":
        from repro.obs import regress

        return regress.main(argv[1:])
    if argv and argv[0] == "watch":
        return run_watch(build_watch_parser().parse_args(argv[1:]))
    if argv and argv[0] == "trace":
        return run_trace(build_trace_parser().parse_args(argv[1:]))
    if argv and argv[0] == "slo":
        return run_slo(build_slo_parser().parse_args(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level),
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    if args.smoke:
        _apply_smoke(args)

    out_dir = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_out = args.trace_out or out_dir / "obs_trace.json"
    metrics_out = args.metrics_out or out_dir / "obs_metrics.prom"
    json_out = args.json_out or out_dir / "obs_metrics.json"

    ring = sampler = slos = None
    if args.telemetry:
        from repro.obs import profiler as profiler_mod
        from repro.obs.resources import ResourceSampler
        from repro.obs.timeseries import TimeSeriesRing

        slos = _load_slos(args.slo_file)
        ring = TimeSeriesRing()
        sampler = ResourceSampler(ring, interval_s=args.sample_interval)
        metrics.set_exemplars(True)
        profiler_mod.install()
        if args.flight_out is None:
            # Exemplars/profiler captures join on the flight recorder,
            # so telemetry mode records every query (threshold 0).
            flight.clear()
            flight.configure(enabled_=True, latency_threshold_s=0.0)
        sampler.start()

    tracing.clear()
    previous = tracing.set_enabled(
        not args.no_trace, verbose_events=args.verbose_trace
    )
    if args.flight_out is not None:
        flight.clear()
        flight.configure(enabled_=True, latency_threshold_s=0.0)
    try:
        summary = run_workload(args)
    finally:
        tracing.set_enabled(previous)
        if sampler is not None:
            sampler.stop()
        if args.telemetry:
            metrics.set_exemplars(False)
        if args.flight_out is not None and not args.telemetry:
            flight.configure(enabled_=False)

    metrics_out.write_text(export.render_prometheus())
    export.write_json(json_out)
    print(f"wrote {metrics_out} and {json_out}")
    if args.telemetry:
        from repro.obs import profiler as profiler_mod
        from repro.obs.slo import evaluate_slos

        om_out = out_dir / "obs_metrics.om"
        om_out.write_text(export.render_openmetrics())
        ts_out = out_dir / "timeseries.json"
        ts_out.write_text(
            json.dumps(export.timeseries_payload(ring, slos=slos)) + "\n"
        )
        dash_out = out_dir / "dashboard.html"
        dash_out.write_text(export.DASHBOARD_HTML)
        verdict = evaluate_slos(slos, ring)
        slo_out = out_dir / "slo_verdict.json"
        slo_out.write_text(json.dumps(verdict, indent=2) + "\n")
        prof = profiler_mod.get()
        flame_out = out_dir / "flamegraph.txt"
        if prof is not None:
            prof.write_collapsed(flame_out)
        print(
            f"wrote {om_out}, {ts_out}, {dash_out}, {slo_out}, {flame_out}"
        )
        state = (
            "FIRING" if verdict["firing"]
            else "budget exhausted" if verdict["exhausted"]
            else "ok"
        )
        print(f"SLO verdict: {state} ({len(verdict['slos'])} SLOs)")
    if args.flight_out is not None:
        flight.dump_jsonl(args.flight_out)
        print(
            f"wrote {args.flight_out} ({len(flight.records())} flight records)"
        )
    if not args.no_trace:
        tracing.write_chrome_trace(trace_out)
        n_events = len(tracing.events())
        dropped = tracing.dropped_events()
        print(
            f"wrote {trace_out} ({n_events} events"
            + (f", {dropped} dropped" if dropped else "")
            + ") — open in Perfetto / chrome://tracing"
        )
    for algorithm, row in summary["algorithms"].items():
        print(
            f"  {algorithm:>4}: {row['queries']} queries in {row['wall_s']}s "
            f"({row['throughput_qps']} q/s)  "
            f"p50 {row['latency_p50_s'] * 1e3:.2f}ms / "
            f"p95 {row['latency_p95_s'] * 1e3:.2f}ms / "
            f"p99 {row['latency_p99_s'] * 1e3:.2f}ms  "
            f"node-cache {row['node_cache_hit_rate']:.0%}"
        )
        for phase, seconds in row["phase_times_s"].items():
            print(f"        {phase:<32} {seconds:.4f}s")

    if args.serve is not None:
        server = export.MetricsServer(
            port=args.serve, ring=ring, slos=slos
        ).start()
        print(
            f"serving metrics on http://127.0.0.1:{server.port}/metrics "
            + ("(and /dashboard, /timeseries.json) " if ring is not None else "")
            + "(Ctrl-C to stop)"
        )
        if sampler is not None:
            sampler.start()  # keep the ring moving while serving
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            if sampler is not None:
                sampler.stop()
            server.close()
    if args.telemetry:
        from repro.obs import profiler as profiler_mod

        profiler_mod.uninstall()
        flight.configure(enabled_=False)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
