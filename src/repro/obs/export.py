"""Metric exporters: Prometheus text exposition, JSON, scrape endpoint.

Three ways to get the contents of a :class:`~repro.obs.metrics.MetricsRegistry`
out of the process:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one sample line per
  series, histograms as cumulative ``_bucket{le=...}`` series plus
  ``_sum`` / ``_count``;
* :func:`snapshot` / :func:`write_json` — a JSON document with the same
  information plus the p50/p95/p99 summaries, convenient for benchmark
  artifacts and tests;
* :class:`MetricsServer` — an optional scrape endpoint on stdlib
  ``http.server`` (no third-party dependency): ``GET /metrics`` returns
  the text exposition, ``GET /metrics.json`` the JSON snapshot.  The
  server runs on a daemon thread; pass ``port=0`` to bind an ephemeral
  port (see ``server.port``).
"""

from __future__ import annotations

import json
import logging
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs import metrics as _metrics
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

logger = logging.getLogger(__name__)

CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _label_str(labelnames, labelvalues, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in the Prometheus text exposition format."""
    if registry is None:
        registry = _metrics.registry()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type_name}")
        for labelvalues, child in family.series():
            labels = _label_str(family.labelnames, labelvalues)
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [*child.buckets, math.inf]
                for bound, count in zip(bounds, cumulative):
                    le = _label_str(
                        family.labelnames,
                        labelvalues,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{family.name}_bucket{le} {count}")
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# JSON snapshots
# ----------------------------------------------------------------------
def snapshot(registry: MetricsRegistry | None = None) -> dict:
    """JSON-able snapshot of every series in the registry."""
    if registry is None:
        registry = _metrics.registry()
    out: dict[str, dict] = {}
    for family in registry.families():
        series = []
        for labelvalues, child in family.series():
            labels = dict(zip(family.labelnames, labelvalues))
            if isinstance(child, (Counter, Gauge)):
                series.append({"labels": labels, "value": child.value})
            elif isinstance(child, Histogram):
                series.append(
                    {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": list(child.buckets),
                        "bucket_counts": child.bucket_counts(),
                        "p50": child.p50,
                        "p95": child.p95,
                        "p99": child.p99,
                    }
                )
        out[family.name] = {
            "type": family.type_name,
            "help": family.help,
            "series": series,
        }
    return out


def write_json(path, registry: MetricsRegistry | None = None) -> Path:
    """Write :func:`snapshot` to ``path`` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(snapshot(registry), indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# scrape endpoint
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set by MetricsServer

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(self.registry).encode()
            content_type = CONTENT_TYPE_PROMETHEUS
        elif path == "/metrics.json":
            body = (json.dumps(snapshot(self.registry)) + "\n").encode()
            content_type = "application/json"
        elif path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain"
        else:
            self.send_error(404, "unknown path")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        logger.debug("metrics endpoint: " + fmt, *args)


class MetricsServer:
    """Optional Prometheus scrape endpoint on a daemon thread.

    Usage::

        server = MetricsServer(port=0).start()
        print(f"scrape http://127.0.0.1:{server.port}/metrics")
        ...
        server.close()
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else _metrics.registry()
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        handler = type("BoundHandler", (_Handler,), {"registry": self.registry})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        logger.info("metrics endpoint listening on %s:%d", self.host, self.port)
        return self

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
