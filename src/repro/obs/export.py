"""Metric exporters: Prometheus text, OpenMetrics, JSON, scrape endpoint.

Ways to get the contents of a :class:`~repro.obs.metrics.MetricsRegistry`
out of the process:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one sample line per
  series, histograms as cumulative ``_bucket{le=...}`` series plus
  ``_sum`` / ``_count``;
* :func:`render_openmetrics` — the same samples in OpenMetrics syntax
  with **exemplars**: histogram bucket lines carry
  ``# {trace_id="..."} value ts`` suffixes when exemplar capture was on
  (:func:`repro.obs.metrics.set_exemplars`), so a p99 bucket deep-links
  to the flight-recorder entry / profiler capture with that trace id.
  Kept separate from :func:`render_prometheus` so strict 0.0.4
  consumers never see exemplar suffixes;
* :func:`snapshot` / :func:`write_json` — a JSON document with the same
  information plus the p50/p95/p99 summaries and exemplars, convenient
  for benchmark artifacts and tests;
* :class:`MetricsServer` — an optional scrape endpoint on stdlib
  ``http.server`` (no third-party dependency).  Paths: ``/metrics``
  (text exposition), ``/openmetrics`` (exemplars), ``/metrics.json``,
  ``/healthz``, and — when the server is given a time-series ring —
  ``/timeseries.json`` (windowed rates/quantiles + SLO verdicts) and
  ``/dashboard`` (a self-contained HTML page polling it); plus
  ``/flight.json`` (flight-recorder ring) and ``/flamegraph.txt``
  (collapsed stacks from the installed profiler).  The server runs on a
  daemon thread; pass ``port=0`` to bind an ephemeral port (see
  ``server.port``).
"""

from __future__ import annotations

import json
import logging
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs

from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.obs import requests as _requests
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

logger = logging.getLogger(__name__)

CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_OPENMETRICS = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Default series surfaced by ``/timeseries.json`` and the dashboard.
DEFAULT_TIMELINE = {
    "counters": (
        "repro_queries_total",
        "repro_executor_failures_total",
        "repro_features_pulled_total",
    ),
    "histograms": ("repro_query_seconds",),
    "gauges": (
        "repro_resource_rss_bytes",
        "repro_resource_threads",
        "repro_resource_executor_queue_depth",
        "repro_resource_node_cache_bytes",
        "repro_resource_shm_bytes",
    ),
}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _label_str(labelnames, labelvalues, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in the Prometheus text exposition format."""
    if registry is None:
        registry = _metrics.registry()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type_name}")
        for labelvalues, child in family.series():
            labels = _label_str(family.labelnames, labelvalues)
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [*child.buckets, math.inf]
                for bound, count in zip(bounds, cumulative):
                    le = _label_str(
                        family.labelnames,
                        labelvalues,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{family.name}_bucket{le} {count}")
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_openmetrics(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in OpenMetrics syntax, exemplars included.

    Sample lines match :func:`render_prometheus`; the differences are
    the trailing ``# EOF`` marker and ``# {trace_id="..."} value ts``
    exemplar suffixes on histogram bucket lines.  An exemplar is
    attached to the *cumulative* bucket line of the bucket its
    observation actually landed in, per the OpenMetrics exposition
    rules.
    """
    if registry is None:
        registry = _metrics.registry()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type_name}")
        for labelvalues, child in family.series():
            labels = _label_str(family.labelnames, labelvalues)
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
            elif isinstance(child, Histogram):
                exemplars = {
                    idx: (value, trace_id, ts)
                    for idx, value, trace_id, ts in child.exemplars()
                }
                cumulative = child.cumulative_counts()
                bounds = [*child.buckets, math.inf]
                for i, (bound, count) in enumerate(zip(bounds, cumulative)):
                    le = _label_str(
                        family.labelnames,
                        labelvalues,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    line = f"{family.name}_bucket{le} {count}"
                    ex = exemplars.get(i)
                    if ex is not None:
                        value, trace_id, ts = ex
                        line += (
                            f' # {{trace_id="{_escape_label_value(trace_id)}"}}'
                            f" {_format_value(value)} {ts:.3f}"
                        )
                    lines.append(line)
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON snapshots
# ----------------------------------------------------------------------
def snapshot(registry: MetricsRegistry | None = None) -> dict:
    """JSON-able snapshot of every series in the registry."""
    if registry is None:
        registry = _metrics.registry()
    out: dict[str, dict] = {}
    for family in registry.families():
        series = []
        for labelvalues, child in family.series():
            labels = dict(zip(family.labelnames, labelvalues))
            if isinstance(child, (Counter, Gauge)):
                series.append({"labels": labels, "value": child.value})
            elif isinstance(child, Histogram):
                entry = {
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": list(child.buckets),
                    "bucket_counts": child.bucket_counts(),
                    "p50": child.p50,
                    "p95": child.p95,
                    "p99": child.p99,
                }
                exemplars = child.exemplars()
                if exemplars:
                    entry["exemplars"] = [
                        {
                            "bucket_index": idx,
                            "value": value,
                            "trace_id": trace_id,
                            "ts": ts,
                        }
                        for idx, value, trace_id, ts in exemplars
                    ]
                series.append(entry)
        out[family.name] = {
            "type": family.type_name,
            "help": family.help,
            "series": series,
        }
    return out


def write_json(path, registry: MetricsRegistry | None = None) -> Path:
    """Write :func:`snapshot` to ``path`` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(snapshot(registry), indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# time-series payload + dashboard
# ----------------------------------------------------------------------
def timeseries_payload(
    ring,
    slos=None,
    timeline_spec: dict | None = None,
    max_slots: int = 300,
) -> dict:
    """The ``/timeseries.json`` document: timeline + windows + verdicts.

    ``ring`` is a :class:`~repro.obs.timeseries.TimeSeriesRing`;
    ``slos`` an optional list of :class:`~repro.obs.slo.SLO` objects
    whose verdicts are embedded under ``"slo"``.
    """
    spec = timeline_spec or DEFAULT_TIMELINE
    payload: dict = {
        "samples_taken": ring.samples_taken,
        "slots": len(ring),
        "capacity": ring.capacity,
        "timeline": ring.timeline(
            counter_names=spec.get("counters", ()),
            hist_names=spec.get("histograms", ()),
            gauge_names=spec.get("gauges", ()),
            max_slots=max_slots,
        ),
        "windows": {},
    }
    for window_s in (10.0, 60.0, 300.0):
        win: dict = {"span_s": ring.window_span(window_s)}
        for name in spec.get("counters", ()):
            win.setdefault("rates", {})[name] = ring.rate(name, window_s)
        for name in spec.get("histograms", ()):
            win.setdefault("hist", {})[name] = {
                "count": ring.window_count(name, window_s),
                "p50": ring.window_quantile(name, 0.5, window_s),
                "p95": ring.window_quantile(name, 0.95, window_s),
                "p99": ring.window_quantile(name, 0.99, window_s),
            }
        payload["windows"][str(int(window_s))] = win
    if slos:
        from repro.obs.slo import evaluate_slos

        payload["slo"] = evaluate_slos(list(slos), ring)
    tenants = ring.label_values("repro_serve_tenant_seconds", "tenant")
    if tenants:
        from repro.obs.slo import evaluate_tenant_slos

        verdicts = evaluate_tenant_slos(ring, slos=slos)
        payload["tenants"] = {
            tenant: {
                "rate_60s": ring.rate(
                    "repro_serve_requests_total", 60.0, {"tenant": tenant}
                ),
                "p95_s": ring.window_quantile(
                    "repro_serve_tenant_seconds", 0.95, 60.0,
                    {"tenant": tenant},
                ),
                "p99_s": ring.window_quantile(
                    "repro_serve_tenant_seconds", 0.99, 60.0,
                    {"tenant": tenant},
                ),
                "slo": verdicts.get(tenant),
            }
            for tenant in tenants
        }
    return payload


#: Self-contained operations dashboard: no external assets, polls
#: ``/timeseries.json`` and renders QPS / latency quantiles / resource
#: gauges on <canvas>, plus SLO budget cards.  Served at ``/dashboard``.
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro — operational telemetry</title>
<style>
  :root { --bg:#0f1117; --panel:#181b24; --fg:#d6d8e0; --dim:#7a7f8e;
          --acc:#4fc3f7; --warn:#ffb74d; --bad:#ef5350; --ok:#66bb6a; }
  body { background:var(--bg); color:var(--fg); margin:0;
         font:13px/1.45 system-ui, sans-serif; }
  header { padding:12px 20px; border-bottom:1px solid #262a36;
           display:flex; align-items:baseline; gap:14px; }
  header h1 { font-size:15px; margin:0; font-weight:600; }
  header .sub { color:var(--dim); font-size:12px; }
  .grid { display:grid; gap:14px; padding:16px 20px;
          grid-template-columns:repeat(auto-fit, minmax(340px, 1fr)); }
  .panel { background:var(--panel); border:1px solid #262a36;
           border-radius:8px; padding:12px 14px; }
  .panel h2 { font-size:12px; margin:0 0 8px; color:var(--dim);
              text-transform:uppercase; letter-spacing:.06em; }
  canvas { width:100%; height:120px; display:block; }
  .big { font-size:22px; font-weight:600; }
  .cards { display:flex; flex-wrap:wrap; gap:10px; }
  .card { flex:1 1 150px; background:#11141c; border-radius:6px;
          padding:8px 10px; border:1px solid #232734; }
  .card .name { color:var(--dim); font-size:11px; }
  .bar { height:6px; background:#232734; border-radius:3px;
         margin-top:6px; overflow:hidden; }
  .bar i { display:block; height:100%; background:var(--ok); }
  .firing { color:var(--bad); font-weight:600; }
  .okay { color:var(--ok); }
  table { width:100%; border-collapse:collapse; font-size:12px; }
  td { padding:2px 6px 2px 0; color:var(--fg); }
  td.k { color:var(--dim); }
</style>
</head>
<body>
<header>
  <h1>repro telemetry</h1>
  <span class="sub" id="meta">connecting&hellip;</span>
</header>
<div class="grid">
  <div class="panel"><h2>Queries / s</h2>
    <div class="big" id="qps">&ndash;</div><canvas id="c_qps"></canvas></div>
  <div class="panel"><h2>Latency p50 / p95 / p99 (ms)</h2>
    <div class="big" id="lat">&ndash;</div><canvas id="c_lat"></canvas></div>
  <div class="panel"><h2>SLO error budgets</h2>
    <div class="cards" id="slo"></div></div>
  <div class="panel"><h2>Resources</h2>
    <table id="res"></table><canvas id="c_rss"></canvas></div>
  <div class="panel"><h2>Tenants (60 s)</h2>
    <table id="tenants"></table></div>
</div>
<script>
"use strict";
const fmt = (v, d=1) => v == null ? "–" : (+v).toFixed(d);
const fmtB = v => v >= 1<<30 ? fmt(v/(1<<30))+" GiB"
                : v >= 1<<20 ? fmt(v/(1<<20))+" MiB"
                : v >= 1024  ? fmt(v/1024)+" KiB" : fmt(v,0)+" B";
function line(canvas, seriesList, colors) {
  const ctx = canvas.getContext("2d");
  const W = canvas.width = canvas.clientWidth * devicePixelRatio;
  const H = canvas.height = canvas.clientHeight * devicePixelRatio;
  ctx.clearRect(0, 0, W, H);
  let max = 0;
  for (const s of seriesList) for (const v of s) if (v > max) max = v;
  if (max <= 0) max = 1;
  seriesList.forEach((s, si) => {
    if (s.length < 2) return;
    ctx.beginPath();
    ctx.strokeStyle = colors[si];
    ctx.lineWidth = 1.5 * devicePixelRatio;
    s.forEach((v, i) => {
      const x = i / (s.length - 1) * (W - 4) + 2;
      const y = H - 3 - (v / max) * (H - 8);
      i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
    });
    ctx.stroke();
  });
  ctx.fillStyle = "#7a7f8e";
  ctx.font = `${10 * devicePixelRatio}px system-ui`;
  ctx.fillText(fmt(max, max < 10 ? 2 : 0), 4, 11 * devicePixelRatio);
}
async function tick() {
  let d;
  try {
    d = await (await fetch("timeseries.json")).json();
  } catch (e) {
    document.getElementById("meta").textContent = "disconnected — " + e;
    return;
  }
  const tl = d.timeline || [];
  document.getElementById("meta").textContent =
    `${d.slots}/${d.capacity} slots · ${d.samples_taken} samples · ` +
    new Date().toLocaleTimeString();
  const qpsSeries = tl.map(s =>
    (s.rates || {})["repro_queries_total"] || 0);
  const w60 = (d.windows || {})["60"] || {};
  document.getElementById("qps").textContent =
    fmt(((w60.rates || {})["repro_queries_total"]), 1) + " qps (60 s)";
  line(document.getElementById("c_qps"), [qpsSeries], ["#4fc3f7"]);
  const h = s => ((s.hist || {})["repro_query_seconds"] || {});
  const p50 = tl.map(s => (h(s).p50 || 0) * 1e3);
  const p95 = tl.map(s => (h(s).p95 || 0) * 1e3);
  const p99 = tl.map(s => (h(s).p99 || 0) * 1e3);
  const wh = ((w60.hist || {})["repro_query_seconds"]) || {};
  document.getElementById("lat").textContent =
    `${fmt(wh.p50 * 1e3)} / ${fmt(wh.p95 * 1e3)} / ${fmt(wh.p99 * 1e3)}`;
  line(document.getElementById("c_lat"), [p50, p95, p99],
       ["#66bb6a", "#ffb74d", "#ef5350"]);
  const sloDiv = document.getElementById("slo");
  sloDiv.innerHTML = "";
  for (const v of ((d.slo || {}).slos || [])) {
    const b = v.error_budget;
    const used = Math.min(1, Math.max(0, b.consumed_fraction));
    const cls = v.firing || b.exhausted ? "firing" : "okay";
    const card = document.createElement("div");
    card.className = "card";
    card.innerHTML =
      `<div class="name">${v.slo}</div>` +
      `<div class="${cls}">${v.firing ? "FIRING" :
         b.exhausted ? "BUDGET EXHAUSTED" : "ok"}</div>` +
      `<div class="bar"><i style="width:${(used * 100).toFixed(1)}%;` +
      `background:${used > 0.9 ? "#ef5350" : used > 0.6 ? "#ffb74d" :
         "#66bb6a"}"></i></div>` +
      `<div class="name">${fmt(b.consumed, 0)}/${fmt(b.total, 1)} ` +
      `budget · ${fmt(v.total, 0)} events</div>`;
    sloDiv.appendChild(card);
  }
  const last = tl.length ? tl[tl.length - 1] : {};
  const g = last.gauges || {};
  const rows = [
    ["RSS", fmtB(g["repro_resource_rss_bytes"] || 0)],
    ["threads", fmt(g["repro_resource_threads"], 0)],
    ["executor queue", fmt(g["repro_resource_executor_queue_depth"], 0)],
    ["node-cache bytes", fmtB(g["repro_resource_node_cache_bytes"] || 0)],
    ["/dev/shm", fmtB(g["repro_resource_shm_bytes"] || 0)],
  ];
  document.getElementById("res").innerHTML = rows.map(
    ([k, v]) => `<tr><td class="k">${k}</td><td>${v}</td></tr>`).join("");
  const rss = tl.map(s =>
    ((s.gauges || {})["repro_resource_rss_bytes"] || 0) / (1 << 20));
  line(document.getElementById("c_rss"), [rss], ["#4fc3f7"]);
  const tenants = d.tenants || {};
  const names = Object.keys(tenants).sort();
  document.getElementById("tenants").innerHTML =
    names.length === 0
      ? `<tr><td class="k">no tenant traffic in window</td></tr>`
      : `<tr><td class="k">tenant</td><td class="k">qps</td>` +
        `<td class="k">p95 ms</td><td class="k">p99 ms</td>` +
        `<td class="k">slo</td></tr>` +
        names.map(n => {
          const t = tenants[n];
          const v = t.slo || {};
          const cls = v.firing ? "firing" : "okay";
          const state = v.firing ? "FIRING"
            : (v.error_budget || {}).exhausted ? "EXHAUSTED" : "ok";
          return `<tr><td>${n}</td><td>${fmt(t.rate_60s, 2)}</td>` +
            `<td>${fmt((t.p95_s || 0) * 1e3)}</td>` +
            `<td>${fmt((t.p99_s || 0) * 1e3)}</td>` +
            `<td class="${cls}">${state}</td></tr>`;
        }).join("");
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""


# ----------------------------------------------------------------------
# scrape endpoint
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set by MetricsServer
    ring = None                # TimeSeriesRing | None
    slos = None                # list[SLO] | None
    timeline_spec = None       # dict | None

    #: Socket read timeout.  A half-open client (connected, never sends
    #: a complete request line) would otherwise pin its handler thread
    #: in ``rfile.readline`` forever; with the timeout the read raises,
    #: ``handle_one_request`` closes the connection, and the thread
    #: exits on its own.
    timeout = 5.0

    #: TCP_NODELAY.  Responses go out as (at least) two small writes —
    #: the header block, then the body — and with Nagle on, the second
    #: write stalls until the client ACKs the first: a flat ~40 ms
    #: added to every keep-alive request on Linux (delayed ACK).
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(self.registry).encode()
            content_type = CONTENT_TYPE_PROMETHEUS
        elif path == "/openmetrics":
            body = render_openmetrics(self.registry).encode()
            content_type = CONTENT_TYPE_OPENMETRICS
        elif path == "/metrics.json":
            body = (json.dumps(snapshot(self.registry)) + "\n").encode()
            content_type = "application/json"
        elif path == "/timeseries.json" and self.ring is not None:
            payload = timeseries_payload(
                self.ring, slos=self.slos, timeline_spec=self.timeline_spec
            )
            body = (json.dumps(payload) + "\n").encode()
            content_type = "application/json"
        elif path == "/dashboard" and self.ring is not None:
            body = DASHBOARD_HTML.encode()
            content_type = "text/html; charset=utf-8"
        elif path == "/flight.json":
            payload = {
                "stats": _flight.stats(),
                "records": [r.to_dict() for r in _flight.records()],
            }
            body = (json.dumps(payload) + "\n").encode()
            content_type = "application/json"
        elif path == "/traces.json":
            query = parse_qs(
                self.path.partition("?")[2], keep_blank_values=False
            )
            min_ms = None
            if "min_ms" in query:
                try:
                    min_ms = float(query["min_ms"][-1])
                except ValueError:
                    self.send_error(400, "min_ms must be a number")
                    return
            payload = _requests.payload(
                trace_id=query.get("trace_id", [None])[-1],
                tenant=query.get("tenant", [None])[-1],
                min_ms=min_ms,
            )
            body = (json.dumps(payload) + "\n").encode()
            content_type = "application/json"
        elif path == "/flamegraph.txt":
            from repro.obs import profiler as _profiler

            prof = _profiler.get()
            if prof is None:
                self.send_error(404, "profiler not installed")
                return
            counts = prof.collapsed()
            body = "".join(
                f"{stack} {count}\n"
                for stack, count in sorted(counts.items())
            ).encode()
            content_type = "text/plain; charset=utf-8"
        elif path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain"
        else:
            self.send_error(404, "unknown path")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        logger.debug("metrics endpoint: " + fmt, *args)


class MetricsServer:
    """Optional Prometheus scrape endpoint on a daemon thread.

    Usage::

        server = MetricsServer(port=0).start()
        print(f"scrape http://127.0.0.1:{server.port}/metrics")
        ...
        server.close()
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ring=None,
        slos=None,
        timeline_spec: dict | None = None,
    ) -> None:
        self.registry = registry if registry is not None else _metrics.registry()
        self.host = host
        self.ring = ring
        self.slos = slos
        self.timeline_spec = timeline_spec
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "registry": self.registry,
                "ring": self.ring,
                "slos": self.slos,
                "timeline_spec": self.timeline_spec,
            },
        )
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        logger.info("metrics endpoint listening on %s:%d", self.host, self.port)
        return self

    def close(self) -> None:
        """Stop serving and release the port; returns promptly.

        Handler threads are daemonic and never joined, and the listening
        socket is shut *before* the serve-thread join, so a stalled or
        half-open client connection cannot wedge close() — the worst
        case is the serve loop's poll interval, not a client's lifetime.
        Stuck handler threads drain on their own via the handler socket
        ``timeout``.
        """
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5)
            if thread.is_alive():  # pragma: no cover - defensive
                logger.warning(
                    "metrics endpoint thread still alive after close()"
                )

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
