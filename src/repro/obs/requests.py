"""Request-level tracing: W3C ``traceparent`` + a tail-sampled trace store.

The serving layer (:mod:`repro.serve`) turns the engine into an online
multi-tenant service; this module gives every *request* — including the
ones that never reach the executor (quota 429s, cache hits, shed load) —
a durable, queryable trace:

* :func:`parse_traceparent` / :func:`format_traceparent` — W3C Trace
  Context interop.  A client-supplied ``traceparent`` header donates its
  128-bit trace id, which then joins the span tracer, flight recorder,
  histogram exemplars and structured logs exactly like an internally
  minted id (trace ids are opaque hex strings everywhere in the stack);
  the response carries a fresh ``traceparent`` naming the same trace.
* :class:`RequestTrace` + the module-level **trace store** — a bounded
  in-memory buffer of finished requests with their admission-waterfall
  span trees (``serve.quota`` → ``serve.cache`` → ``serve.backpressure``
  → ``serve.execute`` → engine phases), captured per-request through a
  :class:`~repro.obs.tracing.SpanCollector` even while global Chrome
  tracing is off.
* **Tail-based sampling** — the keep/drop decision happens when the
  request *finishes*, when its outcome is known: errors (4xx/5xx),
  shed requests (429) and requests slower than the SLO threshold are
  always kept; the boring bulk is represented by a deterministic
  1-in-N uniform sample.  The store is byte-bounded; when over budget
  it evicts oldest *uniform* entries first and touches interesting
  entries only when nothing boring is left.
* ``/traces.json?trace_id=…&tenant=…&min_ms=…`` (served by
  :mod:`repro.obs.export`) and ``python -m repro.obs trace <id>``
  (:func:`render_trace_tree`) are the query paths.

Like the flight recorder, the store is process-wide, thread-safe,
disabled by default (one flag check per request when off) and never
raises into the serving path.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

#: Default byte budget for buffered traces (estimated JSON size).
DEFAULT_MAX_BYTES = 2 * 1024 * 1024

#: Requests at or over this duration are kept as "slow" (tail sampling).
#: Matches the committed serving latency SLO threshold (``SLO.json``).
DEFAULT_SLOW_THRESHOLD_S = 0.1

#: Keep one in this many boring requests as the uniform sample.
DEFAULT_UNIFORM_EVERY = 20

#: Per-trace span ceiling; a runaway span producer must not let one
#: request dominate the store.
MAX_SPANS_PER_TRACE = 512

#: Module flag, read once per request.  Mutate only via :func:`configure`.
enabled = False

_lock = threading.Lock()
_traces: list["RequestTrace"] = []
_bytes = 0
_max_bytes = DEFAULT_MAX_BYTES
_slow_threshold_s = DEFAULT_SLOW_THRESHOLD_S
_uniform_every = DEFAULT_UNIFORM_EVERY
_seen = 0
_dropped = 0
_evicted_uniform = 0
_evicted_interesting = 0
_kept_by_reason: dict[str, int] = {}


# ----------------------------------------------------------------------
# W3C Trace Context (traceparent)
# ----------------------------------------------------------------------
_HEX = frozenset("0123456789abcdef")


def _is_hex(value: str) -> bool:
    # The W3C spec mandates lowercase hex; uppercase is invalid on the
    # wire, so an uppercase header falls back to a fresh internal id.
    return bool(value) and all(c in _HEX for c in value)


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a ``traceparent`` header.

    Returns None for anything invalid per W3C Trace Context level 1:
    wrong field count or width, non-(lowercase-)hex characters, the
    all-zero trace or parent id, and the forbidden version ``ff``.
    Unknown future versions are accepted when their first four fields
    parse (the spec's forward-compatibility rule); version ``00`` must
    have exactly four fields.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[:4]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if trace_id == "0" * 32:
        return None
    if len(parent_id) != 16 or not _is_hex(parent_id):
        return None
    if parent_id == "0" * 16:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return trace_id, parent_id


def w3c_trace_id(trace_id: str) -> str:
    """``trace_id`` widened to the 32-hex W3C form.

    Internally minted ids are 16 hex chars; zero-padding on the left
    yields a stable, reversible 128-bit form.  Ids already 32 wide
    (client-donated) pass through unchanged.
    """
    tid = trace_id.lower()
    if len(tid) < 32:
        tid = tid.rjust(32, "0")
    return tid[:32]


def format_traceparent(
    trace_id: str, span_id: str | None = None, flags: int = 0x01
) -> str:
    """A response ``traceparent`` naming ``trace_id``.

    The parent-id field carries a fresh span id (this service is the
    caller's child span); flags default to ``01`` (sampled) because a
    request that reached us was, by definition, traced here.
    """
    if span_id is None:
        span_id = uuid.uuid4().hex[:16]
    return f"00-{w3c_trace_id(trace_id)}-{span_id}-{flags:02x}"


# ----------------------------------------------------------------------
# the trace store
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RequestTrace:
    """One finished serving request with its span tree."""

    trace_id: str
    #: Unix timestamp of request completion.
    ts: float
    tenant: str
    #: Terminal outcome: ok / cached / quota / backpressure /
    #: bad_request / error.
    outcome: str
    status: int
    duration_s: float
    algorithm: str = ""
    pulling: str = ""
    #: Query arguments (None for requests rejected before parsing).
    query: dict | None = None
    #: Chrome-trace-shaped span events collected for this request.
    spans: list = field(default_factory=list)
    #: Why tail sampling kept this trace: error / shed / slow / uniform.
    keep_reason: str = ""
    #: Rejection/error detail, when any.
    reason: str = ""
    #: Estimated serialized size (store accounting).
    approx_bytes: int = 0

    def to_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "ts": self.ts,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "status": self.status,
            "duration_s": self.duration_s,
            "keep_reason": self.keep_reason,
            "spans": self.spans,
        }
        if self.algorithm:
            out["algorithm"] = self.algorithm
        if self.pulling:
            out["pulling"] = self.pulling
        if self.query is not None:
            out["query"] = self.query
        if self.reason:
            out["reason"] = self.reason
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RequestTrace":
        return cls(
            trace_id=data.get("trace_id", ""),
            ts=data.get("ts", 0.0),
            tenant=data.get("tenant", ""),
            outcome=data.get("outcome", ""),
            status=int(data.get("status", 0)),
            duration_s=data.get("duration_s", 0.0),
            algorithm=data.get("algorithm", ""),
            pulling=data.get("pulling", ""),
            query=data.get("query"),
            spans=list(data.get("spans", [])),
            keep_reason=data.get("keep_reason", ""),
            reason=data.get("reason", ""),
        )


def configure(
    enabled_: bool | None = None,
    max_bytes: int | None = None,
    slow_threshold_s: float | None = None,
    uniform_every: int | None = None,
) -> None:
    """(Re)configure the store.

    ``max_bytes`` bounds the buffered traces' estimated JSON size;
    ``slow_threshold_s`` is the tail-sampling latency cut
    (0.0 marks every request slow — i.e. keep everything);
    ``uniform_every`` keeps one in N boring requests (0 disables the
    uniform sample entirely).
    """
    global enabled, _max_bytes, _slow_threshold_s, _uniform_every
    with _lock:
        if max_bytes is not None:
            if max_bytes < 1:
                raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
            _max_bytes = int(max_bytes)
        if slow_threshold_s is not None:
            _slow_threshold_s = max(0.0, float(slow_threshold_s))
        if uniform_every is not None:
            if uniform_every < 0:
                raise ValueError(
                    f"uniform_every must be >= 0, got {uniform_every}"
                )
            _uniform_every = int(uniform_every)
    if enabled_ is not None:
        enabled = bool(enabled_)
    if enabled_:
        _evict_locked_entry()


def _evict_locked_entry() -> None:
    with _lock:
        _evict()


def slow_threshold() -> float:
    return _slow_threshold_s


def _keep_reason(status: int, outcome: str, duration_s: float) -> str | None:
    """Tail-sampling verdict; None means drop."""
    global _seen
    if status == 429:
        return "shed"
    if status >= 400 or outcome == "error":
        return "error"
    if duration_s >= _slow_threshold_s:
        return "slow"
    if _uniform_every > 0 and _seen % _uniform_every == 0:
        return "uniform"
    return None


def _trim_spans(spans) -> list:
    """Copy span events, keeping only the renderable fields.

    Over the per-trace cap, the *longest* spans survive: complete
    events are appended at close time, so the enclosing request / gate /
    executor spans land at the very end of the stream — a head
    truncation would drop exactly the tree's trunk and keep only micro
    leaf phases.  Duration is the shape-preserving criterion; original
    order is kept among the survivors.
    """
    events = list(spans)
    if len(events) > MAX_SPANS_PER_TRACE:
        keep = sorted(
            range(len(events)),
            key=lambda i: events[i].get("dur", 0.0),
            reverse=True,
        )[:MAX_SPANS_PER_TRACE]
        events = [events[i] for i in sorted(keep)]
    out = []
    for event in events:
        trimmed = {
            "name": event.get("name", ""),
            "ts": event.get("ts", 0.0),
            "dur": event.get("dur", 0.0),
        }
        if event.get("cat"):
            trimmed["cat"] = event["cat"]
        if event.get("pid") is not None:
            trimmed["pid"] = event["pid"]
        if event.get("tid") is not None:
            trimmed["tid"] = event["tid"]
        args = event.get("args")
        if args:
            # Coerce exotic arg values here so every stored trace is
            # JSON-serializable by construction (/traces.json, JSONL).
            trimmed["args"] = {
                k: (v if isinstance(v, (str, int, float, bool)) or v is None
                    else repr(v))
                for k, v in args.items() if k != "trace_id"
            }
        out.append(trimmed)
    return out


#: Rough serialized overhead of one trimmed span / one whole trace
#: (braces, keys, numeric fields) for the byte-budget accounting.
_SPAN_BASE_BYTES = 96
_TRACE_BASE_BYTES = 200


def _estimate_bytes(trace: RequestTrace) -> int:
    """Cheap structural size estimate (no serialization on the hot path).

    The store's byte bound is enforced against this estimate, so it only
    needs to be self-consistent and roughly proportional to the real
    JSON size — a ``json.dumps`` here would dominate the whole record
    path for span-heavy traces.
    """
    size = (
        _TRACE_BASE_BYTES
        + len(trace.trace_id) + len(trace.tenant) + len(trace.outcome)
        + len(trace.algorithm) + len(trace.pulling) + len(trace.reason)
    )
    if trace.query:
        size += 32 + 16 * len(trace.query)
    for event in trace.spans:
        size += _SPAN_BASE_BYTES + len(event.get("name", ""))
        args = event.get("args")
        if args:
            for key, value in args.items():
                size += len(key) + len(str(value)) + 8
    return size


def _evict() -> None:
    """Shed oldest *uniform* traces first; interesting ones only when
    nothing boring is left.  Caller holds the lock."""
    global _bytes, _evicted_uniform, _evicted_interesting
    while _bytes > _max_bytes and _traces:
        victim_idx = None
        for i, trace in enumerate(_traces):
            if trace.keep_reason == "uniform":
                victim_idx = i
                break
        if victim_idx is None:
            victim_idx = 0
            _evicted_interesting += 1
        else:
            _evicted_uniform += 1
        victim = _traces.pop(victim_idx)
        _bytes -= victim.approx_bytes


def record(
    trace_id: str,
    tenant: str,
    outcome: str,
    status: int,
    duration_s: float,
    algorithm: str = "",
    pulling: str = "",
    query=None,
    spans=None,
    reason: str = "",
) -> bool:
    """Admit one finished request; returns whether it was kept.

    The tail-sampling decision happens here — after the outcome is
    known.  ``query`` and ``spans`` may be zero-argument callables,
    resolved only when the request is kept — callers on the serving
    hot path use this to defer materializing span/query dicts for the
    dropped majority.  Never raises into the serving path.
    """
    global _seen, _dropped, _bytes
    if not enabled:
        return False
    with _lock:
        keep = _keep_reason(status, outcome, duration_s)
        _seen += 1
        if keep is None:
            _dropped += 1
            return False
        if callable(query):
            query = query()
        if callable(spans):
            spans = spans()
        trace = RequestTrace(
            trace_id=trace_id,
            ts=time.time(),
            tenant=tenant,
            outcome=outcome,
            status=status,
            duration_s=duration_s,
            algorithm=algorithm,
            pulling=pulling,
            query=dict(query) if query else None,
            spans=_trim_spans(list(spans)) if spans else [],
            keep_reason=keep,
            reason=reason,
        )
        trace.approx_bytes = _estimate_bytes(trace)
        _traces.append(trace)
        _bytes += trace.approx_bytes
        _kept_by_reason[keep] = _kept_by_reason.get(keep, 0) + 1
        _evict()
    return True


def get(trace_id: str) -> RequestTrace | None:
    """The newest stored trace with this id (16-hex suffixes match)."""
    wanted = trace_id.lower()
    with _lock:
        for trace in reversed(_traces):
            stored = trace.trace_id.lower()
            if stored == wanted or w3c_trace_id(stored) == w3c_trace_id(
                wanted
            ):
                return trace
    return None


def query_traces(
    trace_id: str | None = None,
    tenant: str | None = None,
    min_ms: float | None = None,
    limit: int = 100,
) -> list[dict]:
    """Stored traces matching every given filter, newest first."""
    with _lock:
        traces = list(_traces)
    out = []
    wanted = w3c_trace_id(trace_id) if trace_id else None
    for trace in reversed(traces):
        if wanted is not None and w3c_trace_id(trace.trace_id) != wanted:
            continue
        if tenant is not None and trace.tenant != tenant:
            continue
        if min_ms is not None and trace.duration_s * 1e3 < min_ms:
            continue
        out.append(trace.to_dict())
        if len(out) >= limit:
            break
    return out


def stats() -> dict:
    """Store bookkeeping: sampling and eviction accounting."""
    with _lock:
        return {
            "enabled": enabled,
            "buffered": len(_traces),
            "bytes": _bytes,
            "max_bytes": _max_bytes,
            "seen": _seen,
            "kept": sum(_kept_by_reason.values()),
            "kept_by_reason": dict(_kept_by_reason),
            "dropped": _dropped,
            "evicted_uniform": _evicted_uniform,
            "evicted_interesting": _evicted_interesting,
            "slow_threshold_s": _slow_threshold_s,
            "uniform_every": _uniform_every,
        }


def payload(
    trace_id: str | None = None,
    tenant: str | None = None,
    min_ms: float | None = None,
    limit: int = 100,
) -> dict:
    """The ``/traces.json`` document."""
    return {
        "stats": stats(),
        "traces": query_traces(
            trace_id=trace_id, tenant=tenant, min_ms=min_ms, limit=limit
        ),
    }


def dump_jsonl(path) -> Path:
    """Write the stored traces to ``path``, one JSON object per line."""
    path = Path(path)
    with _lock:
        traces = list(_traces)
    with path.open("w") as fh:
        for trace in traces:
            fh.write(json.dumps(trace.to_dict()) + "\n")
    return path


def clear() -> int:
    """Drop every stored trace and reset the sampling counters."""
    global _bytes, _seen, _dropped, _evicted_uniform
    global _evicted_interesting
    with _lock:
        n = len(_traces)
        _traces.clear()
        _bytes = 0
        _seen = 0
        _dropped = 0
        _evicted_uniform = 0
        _evicted_interesting = 0
        _kept_by_reason.clear()
    return n


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _span_children(spans: list) -> list[tuple[dict, int]]:
    """(span, depth) rows via timestamp containment.

    Spans arrive as Chrome complete events; a span is a child of the
    innermost earlier span whose [ts, ts+dur] interval contains it.
    Events from other processes were rebased onto the parent timeline
    at ingest, so containment works across the process boundary too.
    """
    ordered = sorted(
        spans, key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0))
    )
    rows: list[tuple[dict, int]] = []
    stack: list[dict] = []
    for event in ordered:
        t0 = event.get("ts", 0.0)
        t1 = t0 + event.get("dur", 0.0)
        while stack:
            top = stack[-1]
            top_end = top.get("ts", 0.0) + top.get("dur", 0.0)
            # Epsilon: a child ending on its parent's boundary stays
            # nested (perf_counter stamps of nested exits often tie).
            if t0 >= top.get("ts", 0.0) - 1e-9 and t1 <= top_end + 1e-9:
                break
            stack.pop()
        rows.append((event, len(stack)))
        stack.append(event)
    return rows


def render_trace_tree(trace: dict) -> str:
    """One stored trace as an indented span tree (pure function).

    ``trace`` is a :meth:`RequestTrace.to_dict` document — from the
    in-process store, ``/traces.json``, or a JSONL dump.
    """
    header = (
        f"trace {trace.get('trace_id', '?')}  "
        f"tenant={trace.get('tenant', '?')}  "
        f"outcome={trace.get('outcome', '?')}  "
        f"status={trace.get('status', '?')}  "
        f"{trace.get('duration_s', 0.0) * 1e3:.2f}ms  "
        f"kept={trace.get('keep_reason', '?')}"
    )
    lines = [header]
    if trace.get("reason"):
        lines.append(f"  reason: {trace['reason']}")
    spans = trace.get("spans") or []
    if not spans:
        lines.append("  (no spans recorded)")
        return "\n".join(lines) + "\n"
    for event, depth in _span_children(spans):
        dur_ms = event.get("dur", 0.0) / 1e3
        args = event.get("args") or {}
        detail = " ".join(
            f"{k}={v}" for k, v in sorted(args.items())
        )
        pid = event.get("pid")
        pid_note = f" [pid {pid}]" if pid is not None and depth == 0 else ""
        lines.append(
            "  " + "  " * depth
            + f"- {event.get('name', '?')}  {dur_ms:.3f}ms"
            + (f"  {detail}" if detail else "")
            + pid_note
        )
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_SLOW_THRESHOLD_S",
    "DEFAULT_UNIFORM_EVERY",
    "RequestTrace",
    "clear",
    "configure",
    "dump_jsonl",
    "format_traceparent",
    "get",
    "parse_traceparent",
    "payload",
    "query_traces",
    "record",
    "render_trace_tree",
    "stats",
    "w3c_trace_id",
]
