"""Near-zero-overhead span tracer with Chrome trace-event export.

Records per-query phase timelines — STPS feature pulls / combination
assembly / threshold updates, STDS chunk scans, ISS search, R-tree node
expansion, cache activity — as *spans* and exports them in the Chrome
trace-event JSON format (load the file in Perfetto / ``chrome://tracing``
to see the timeline, one track per thread).

Tracing is **disabled by default**: :func:`span` returns a shared no-op
context manager after a single module-flag check, so instrumented hot
paths pay one branch and one call when tracing is off (the tier-1
overhead budget is <2%; see ``tests/obs/test_tracing.py``).  Hot loops
can do even better by checking :data:`enabled` (or
``recorder.active``) once per iteration and skipping the call entirely.

Two verbosity levels:

* ``set_enabled(True)`` — phase spans and node-expansion spans;
* ``set_enabled(True, verbose=True)`` — additionally per-event instants
  at cache decision points (node-cache / buffer-pool hits and misses),
  which can produce very large traces.

The event buffer is process-wide, thread-safe, and capped at
:data:`MAX_EVENTS` (overflow is counted, not stored).  Timestamps come
from ``time.perf_counter`` relative to a module epoch, in microseconds,
as the trace-event spec requires.

:class:`PhaseRecorder` is the bridge between the tracer and per-query
cost anatomy: algorithms create one per query (via :func:`recorder`,
which returns a no-op singleton when tracing is off), wrap their phases
in ``recorder.span("phase")``, and store ``recorder.totals()`` into
``QueryStats.phase_times`` — so a single ``QueryResult`` carries its own
per-phase wall-time breakdown whenever tracing is on.
"""

from __future__ import annotations

import collections
import contextvars
import functools
import json
import logging
import os
import threading
import time
import uuid
from pathlib import Path

logger = logging.getLogger(__name__)

#: Hard cap on buffered events; beyond it events are counted as dropped.
MAX_EVENTS = 1_000_000

#: Module flag, read on hot paths.  Mutate only via :func:`set_enabled`.
enabled = False

#: Verbose mode: also record per-event cache-activity instants.
verbose = False

_lock = threading.Lock()
_events: list[dict] = []
_dropped = 0
_thread_names: dict[int, str] = {}
#: Thread names adopted from other processes via :func:`ingest`,
#: keyed ``(pid, tid)`` — worker tids can collide with local ones.
_foreign_thread_names: dict[tuple[int, int], str] = {}
_EPOCH = time.perf_counter()

#: Cached pid stamped onto every event (``os.getpid`` per span adds up
#: on the serving path); refreshed in fork children, and spawn children
#: re-import the module so they pick up their own.
_PID = os.getpid()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_refresh_pid)


def epoch() -> float:
    """This process's trace epoch (a ``perf_counter`` stamp).

    Event timestamps are microseconds since this epoch.  On Linux,
    ``perf_counter`` is ``CLOCK_MONOTONIC`` — the same clock in every
    process — so a worker's events can be rebased into the parent's
    timeline by shifting with the difference of the two epochs (see
    :func:`ingest`).
    """
    return _EPOCH


# ----------------------------------------------------------------------
# trace-id correlation
# ----------------------------------------------------------------------
#: Per-context trace id.  ``QueryProcessor.query`` mints one per query;
#: spans, flight records, and structured logs all join on it.  Stored in
#: a ContextVar so nested queries (sharded fan-out re-entering the
#: per-shard processors) inherit the outer id automatically — but note
#: ``ThreadPoolExecutor`` does *not* propagate context into workers, so
#: cross-thread hops (batch executor, shard fan-out, parallel STDS)
#: re-enter :func:`trace_scope` explicitly inside the worker closure.
_trace_id_var: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace id active in this context, or None outside a query."""
    return _trace_id_var.get()


class trace_scope:
    """Make ``trace_id`` the active id for the enclosed block.

    A ``__slots__`` class rather than a generator context manager: this
    sits on the per-request serving path (and inside fan-out worker
    closures), where the generator protocol's overhead is measurable.
    """

    __slots__ = ("_trace_id", "_token")

    def __init__(self, trace_id: str) -> None:
        self._trace_id = trace_id

    def __enter__(self) -> str:
        self._token = _trace_id_var.set(self._trace_id)
        return self._trace_id

    def __exit__(self, *exc) -> bool:
        _trace_id_var.reset(self._token)
        return False


# ----------------------------------------------------------------------
# per-request span sinks
# ----------------------------------------------------------------------
#: Events one collector will buffer at most; beyond it they are counted
#: as dropped (a single request must not hoard memory).
MAX_SINK_EVENTS = 2048

#: Per-context span sink.  The serving layer attaches a
#: :class:`SpanCollector` per request so that request's spans are
#: captured even while global tracing is off (the tail-sampled trace
#: store keeps only interesting requests, so always-on collection is
#: affordable where always-on global tracing is not).  Like the trace
#: id, the sink does NOT cross ``ThreadPoolExecutor`` hops by itself —
#: worker closures re-enter :func:`sink_scope` explicitly.
_sink_var: contextvars.ContextVar["SpanCollector | None"] = (
    contextvars.ContextVar("repro_span_sink", default=None)
)

#: How many :func:`span_sink` scopes are live process-wide.  Lets
#: :func:`span` stay a single flag check when no request is being
#: collected anywhere (the common idle / tracing-off case).
_active_sinks = 0


class SpanCollector:
    """Buffers the span events of one request.

    A bounded ring keeping the *newest* events: complete spans are
    emitted at close time, so the enclosing request / gate / executor
    spans arrive last — evicting the oldest events sheds early micro
    leaf phases while guaranteeing the tree's trunk survives even when
    a span-heavy query overflows the cap.  ``add`` leans on the GIL
    for deque-append atomicity instead of taking a lock — it runs once
    per span on the serving hot path; the dropped count can race by a
    few under cross-thread fan-out, which is fine for bookkeeping.
    """

    __slots__ = ("events", "dropped")

    def __init__(self) -> None:
        self.events: collections.deque[dict] = collections.deque(
            maxlen=MAX_SINK_EVENTS
        )
        self.dropped = 0

    def add(self, event: dict) -> None:
        if len(self.events) == MAX_SINK_EVENTS:
            self.dropped += 1
        self.events.append(event)

    def add_span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        args: dict | None,
        trace_id: str | None,
    ) -> None:
        """Record one span as a compact tuple (the sink-only fast path).

        Most collected requests are dropped by tail sampling, so
        building a per-span event dict up front is wasted work; the
        tuple is materialized by :meth:`snapshot` only when the trace
        is actually kept.
        """
        if len(self.events) == MAX_SINK_EVENTS:
            self.dropped += 1
        self.events.append(
            (name, cat, t0, t1, args, trace_id, threading.get_ident())
        )

    def snapshot(self) -> list[dict]:
        """The buffered spans as Chrome-style event dicts.

        Tuple entries from :meth:`add_span` are materialized here;
        dict entries (worker spans delivered via :func:`ingest`, or
        copies taken while global tracing was on) pass through as-is.
        Call after the request's fan-out has completed — the ring is
        not locked against concurrent adds.
        """
        out = []
        for entry in list(self.events):
            if isinstance(entry, dict):
                out.append(entry)
                continue
            name, cat, t0, t1, args, trace_id, tid = entry
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (t0 - _EPOCH) * 1e6,
                "dur": max(0.0, (t1 - t0) * 1e6),
                "pid": _PID,
                "tid": tid,
            }
            if trace_id is not None:
                args = dict(args) if args else {}
                args.setdefault("trace_id", trace_id)
            if args:
                event["args"] = args
            out.append(event)
        return out


class span_sink:
    """Deliver spans recorded in the enclosed block to the collector.

    ``None`` is a no-op scope, so callers can write
    ``with span_sink(collector if wanted else None):`` unconditionally.
    Holds the process-wide active-sink count for its lifetime.  A
    ``__slots__`` class for the same hot-path reason as
    :class:`trace_scope`.
    """

    __slots__ = ("_collector", "_token")

    def __init__(self, collector: "SpanCollector | None") -> None:
        self._collector = collector

    def __enter__(self) -> "SpanCollector | None":
        global _active_sinks
        if self._collector is None:
            self._token = None
            return None
        self._token = _sink_var.set(self._collector)
        with _lock:
            _active_sinks += 1
        return self._collector

    def __exit__(self, *exc) -> bool:
        global _active_sinks
        if self._token is not None:
            with _lock:
                _active_sinks -= 1
            _sink_var.reset(self._token)
        return False


class sink_scope:
    """Re-enter an existing sink on another thread.

    Unlike :class:`span_sink` this does not touch the active-sink count —
    the originating scope owns the sink's lifetime; worker closures only
    borrow it for the duration of their slice of the request.
    """

    __slots__ = ("_collector", "_token")

    def __init__(self, collector: "SpanCollector | None") -> None:
        self._collector = collector

    def __enter__(self) -> "SpanCollector | None":
        if self._collector is None:
            self._token = None
            return None
        self._token = _sink_var.set(self._collector)
        return self._collector

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _sink_var.reset(self._token)
        return False


def current_sink() -> "SpanCollector | None":
    """The span sink active in this context, if any."""
    return _sink_var.get()


def sink_active() -> bool:
    """Whether any request is being collected process-wide."""
    return _active_sinks > 0


# ----------------------------------------------------------------------
# enable / disable
# ----------------------------------------------------------------------
def set_enabled(on: bool, verbose_events: bool | None = None) -> bool:
    """Turn tracing on/off; returns the previous enabled flag.

    ``verbose_events`` (when given) sets the verbose flag too; disabling
    tracing always clears it.
    """
    global enabled, verbose
    previous = enabled
    enabled = bool(on)
    if not enabled:
        verbose = False
    elif verbose_events is not None:
        verbose = bool(verbose_events)
    return previous


def is_enabled() -> bool:
    """Whether tracing is currently on."""
    return enabled


class enabled_tracing:
    """Context manager enabling tracing for a block (tests, CLI)."""

    def __init__(self, verbose_events: bool = False) -> None:
        self._verbose = verbose_events
        self._previous = False
        self._previous_verbose = False

    def __enter__(self) -> None:
        global verbose
        self._previous_verbose = verbose
        self._previous = set_enabled(True, verbose_events=self._verbose)

    def __exit__(self, *exc) -> bool:
        set_enabled(self._previous, verbose_events=self._previous_verbose)
        return False


# ----------------------------------------------------------------------
# event recording
# ----------------------------------------------------------------------
def _append(event: dict) -> None:
    global _dropped
    tid = threading.get_ident()
    event["pid"] = _PID
    event["tid"] = tid
    trace_id = _trace_id_var.get()
    if trace_id is not None:
        args = event.get("args")
        if args is None:
            event["args"] = {"trace_id": trace_id}
        elif "trace_id" not in args:
            args["trace_id"] = trace_id
    sink = _sink_var.get()
    if sink is not None:
        # Only reached while global tracing is on (the sink-only path
        # short-circuits in add_complete), so the global buffer keeps
        # the original and the sink takes a copy.
        sink.add(dict(event))
    with _lock:
        if len(_events) >= MAX_EVENTS:
            _dropped += 1
            return
        if tid not in _thread_names:
            _thread_names[tid] = threading.current_thread().name
        _events.append(event)


def add_complete(
    name: str,
    t0: float,
    t1: float,
    cat: str = "query",
    args: dict | None = None,
) -> None:
    """Record a complete ("X") span from perf_counter stamps ``t0``/``t1``.

    With global tracing off (a live sink armed the span), the event is
    handed to the sink as a compact tuple — no dict is built unless
    tail sampling ends up keeping the request.
    """
    if not enabled:
        sink = _sink_var.get()
        if sink is not None:
            sink.add_span(name, cat, t0, t1, args, _trace_id_var.get())
        return
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": (t0 - _EPOCH) * 1e6,
        "dur": max(0.0, (t1 - t0) * 1e6),
    }
    if args:
        event["args"] = args
    _append(event)


def instant(name: str, cat: str = "event", **args) -> None:
    """Record an instant ("i") event (no-op while tracing is off)."""
    if not enabled:
        return
    event = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "t",  # thread-scoped
        "ts": (time.perf_counter() - _EPOCH) * 1e6,
    }
    if args:
        event["args"] = args
    _append(event)


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "cat", "args", "_t0")

    def __init__(self, name: str, cat: str, args: dict | None) -> None:
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        add_complete(
            self.name, self._t0, time.perf_counter(), self.cat, self.args
        )
        return False


def span(name: str, cat: str = "query", **args):
    """Context manager timing a block as one span.

    One branch + one call when tracing is off (returns the shared no-op
    span); a real timed span otherwise.  A live per-request sink
    anywhere in the process also arms spans — :func:`_append` then
    routes them to the context's sink without touching the global
    buffer.
    """
    if not enabled and not _active_sinks:
        return NULL_SPAN
    return _Span(name, cat, args or None)


def trace(name: str | None = None, cat: str = "query"):
    """Decorator recording each call of the function as one span."""

    def decorate(fn):
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a, **kw):
            if not enabled:
                return fn(*a, **kw)
            t0 = time.perf_counter()
            try:
                return fn(*a, **kw)
            finally:
                add_complete(span_name, t0, time.perf_counter(), cat)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# per-query phase accounting
# ----------------------------------------------------------------------
class PhaseRecorder:
    """Accumulates per-phase wall time for one query and emits spans.

    ``active`` is True; hot loops may use it to skip instrumentation
    calls entirely when handed the null recorder instead.
    """

    __slots__ = ("_totals", "_lock")

    active = True

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._lock = threading.Lock()

    def span(self, name: str, cat: str = "phase", **args) -> "_PhaseSpan":
        return _PhaseSpan(self, name, cat, args or None)

    def add(self, name: str, seconds: float) -> None:
        """Fold ``seconds`` into one phase total (thread-safe)."""
        with self._lock:
            self._totals[name] = self._totals.get(name, 0.0) + seconds

    def totals(self) -> dict[str, float]:
        """Per-phase wall seconds accumulated so far (a copy)."""
        with self._lock:
            return dict(self._totals)


class _PhaseSpan:
    __slots__ = ("_recorder", "name", "cat", "args", "_t0")

    def __init__(
        self,
        recorder_: PhaseRecorder,
        name: str,
        cat: str,
        args: dict | None,
    ) -> None:
        self._recorder = recorder_
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter()
        self._recorder.add(self.name, t1 - self._t0)
        add_complete(self.name, self._t0, t1, self.cat, self.args)
        return False


class _NullRecorder:
    """Shared no-op recorder returned while tracing is off."""

    __slots__ = ()

    active = False

    def span(self, name: str, cat: str = "phase", **args) -> _NullSpan:
        return NULL_SPAN

    def add(self, name: str, seconds: float) -> None:
        pass

    def totals(self) -> dict[str, float]:
        return {}


NULL_RECORDER = _NullRecorder()


def recorder():
    """A fresh :class:`PhaseRecorder`, or the no-op singleton when off.

    Live per-request sinks arm recorders too, so served queries carry
    ``phase_times`` and emit phase spans into their request's collector
    even while global tracing is off.
    """
    return PhaseRecorder() if (enabled or _active_sinks) else NULL_RECORDER


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def events() -> list[dict]:
    """A copy of the buffered events."""
    with _lock:
        return [dict(e) for e in _events]


def dropped_events() -> int:
    """Events discarded because the buffer was full."""
    return _dropped


def ingest(
    event_dicts,
    thread_names: dict | None = None,
    worker_epoch: float | None = None,
) -> int:
    """Adopt span events recorded in another process into this buffer.

    The process-mode shard fan-out collects each worker's events around
    a query and ships them back over the result channel together with
    the worker's thread names and trace :func:`epoch`.  Timestamps are
    rebased from the worker's epoch onto this process's (both are
    ``CLOCK_MONOTONIC`` stamps, so the shift is exact under fork *and*
    spawn); thread names are filed under ``(pid, tid)`` so Perfetto
    labels the worker tracks without colliding with local thread ids.

    Returns how many events were adopted; no-ops (returning 0) when
    tracing is disabled and no per-request sink is active.  Events
    beyond :data:`MAX_EVENTS` are counted as dropped, exactly like
    local recording.  When the ingesting context carries a span sink
    (a served request fanning out to process workers), the rebased
    events are delivered to it as well, so the request's stored trace
    includes the worker-side spans.
    """
    global _dropped
    sink = _sink_var.get()
    if not enabled and sink is None:
        return 0
    shift_us = (
        (worker_epoch - _EPOCH) * 1e6 if worker_epoch is not None else 0.0
    )
    if sink is not None:
        for event in event_dicts:
            shifted = dict(event)
            if shift_us:
                shifted["ts"] = shifted.get("ts", 0.0) + shift_us
            sink.add(shifted)
    if not enabled:
        return 0
    n = 0
    with _lock:
        for event in event_dicts:
            if len(_events) >= MAX_EVENTS:
                _dropped += 1
                continue
            event = dict(event)
            if shift_us:
                event["ts"] = event.get("ts", 0.0) + shift_us
            _events.append(event)
            n += 1
        if thread_names:
            pid_default = os.getpid()
            for tid, name in thread_names.items():
                pid = pid_default
                for event in event_dicts:
                    if event.get("tid") == tid and "pid" in event:
                        pid = event["pid"]
                        break
                _foreign_thread_names[(pid, int(tid))] = name
    return n


def thread_name_map() -> dict[int, str]:
    """Local thread names observed so far (tid -> name, a copy)."""
    with _lock:
        return dict(_thread_names)


def clear() -> int:
    """Drop all buffered events; returns how many were dropped."""
    global _dropped
    with _lock:
        n = len(_events)
        _events.clear()
        _thread_names.clear()
        _foreign_thread_names.clear()
        _dropped = 0
    return n


def chrome_trace() -> dict:
    """The buffered events as a Chrome trace-event JSON object.

    Adds ``thread_name`` metadata events so Perfetto labels the executor
    worker tracks.
    """
    with _lock:
        trace_events = [dict(e) for e in _events]
        names = dict(_thread_names)
        foreign = dict(_foreign_thread_names)
    pid = os.getpid()
    for tid, name in sorted(names.items()):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for (fpid, tid), name in sorted(foreign.items()):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": fpid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path) -> Path:
    """Write :func:`chrome_trace` to ``path`` (returns the Path written)."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace()) + "\n")
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "wrote %d trace events to %s (%d dropped)",
            len(_events),
            path,
            _dropped,
        )
    return path
