"""Slow-query flight recorder: a bounded in-memory ring of bad queries.

Production triage needs the *specific* queries that blew the latency
budget or raised, not aggregate histograms.  The flight recorder keeps
the last :data:`DEFAULT_CAPACITY` offending queries in a ring buffer —
each a :class:`QueryRecord` with the query arguments, latency, phase
totals, counter-style stats, a plan summary when EXPLAIN was active, the
trace id (join key against Chrome-trace spans and structured logs), and
the error + ``shard_id`` for failures surfacing through the batch
executor or the sharded fan-out.

Recording is **disabled by default**: the processor checks the module
:data:`enabled` flag once per query, so the off path costs one branch.
Enable with::

    from repro.obs import flight
    flight.configure(enabled_=True, latency_threshold_s=0.050)

and dump with ``flight.dump_jsonl(path)`` (one JSON object per line) or
inspect ``flight.records()`` in-process.  The buffer is process-wide and
thread-safe; capacity overflow evicts the oldest record (ring
semantics), never blocks, and never raises into the query path.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: Ring capacity: old records are evicted once this many are buffered.
DEFAULT_CAPACITY = 512

#: Default ceiling on one record's serialized ``plan_summary``.  Sharded
#: EXPLAIN summaries scale with shard count; a runaway payload must not
#: let a single record dominate the ring's memory or the JSONL dump.
DEFAULT_PLAN_MAX_BYTES = 16 * 1024

#: Module flag, read on hot paths.  Mutate only via :func:`configure`.
enabled = False

_lock = threading.Lock()
_buffer: deque = deque(maxlen=DEFAULT_CAPACITY)
_latency_threshold_s = 0.0
_plan_max_bytes = DEFAULT_PLAN_MAX_BYTES
_total_recorded = 0
_total_evicted = 0

#: Admission hooks: callables invoked (outside the ring lock) with each
#: newly pushed :class:`QueryRecord`.  The continuous profiler registers
#: here so admitting a slow query triggers a retroactive stack capture
#: keyed by the record's trace id.  Hook exceptions are swallowed — the
#: recorder must never raise into the query path.
_hooks: list = []


def add_hook(hook) -> None:
    """Register an admission hook (idempotent)."""
    if hook not in _hooks:
        _hooks.append(hook)


def remove_hook(hook) -> bool:
    """Unregister an admission hook; True when it was registered."""
    try:
        _hooks.remove(hook)
        return True
    except ValueError:
        return False


@dataclass(slots=True)
class QueryRecord:
    """One flight-recorder entry: a slow or failed query, in full."""

    trace_id: str
    #: Unix timestamp of record creation (wall clock, for correlation
    #: with external logs).
    ts: float
    algorithm: str
    variant: str
    pulling: str
    #: Query arguments: k, radius, lam, keyword masks, variant.
    query: dict
    latency_s: float
    #: Per-phase wall seconds (empty unless tracing was on).
    phase_times: dict = field(default_factory=dict)
    #: Counter-style stats from ``QueryResult.stats``.
    counters: dict = field(default_factory=dict)
    #: Compact plan summary (present when EXPLAIN was active).
    plan_summary: dict | None = None
    #: ``{"type": ..., "message": ...}`` for failed queries, else None.
    error: dict | None = None
    #: Shard that produced the failure, when attributable.
    shard_id: int | None = None
    #: Tenant whose request produced this record (serve-layer records).
    tenant: str | None = None
    #: Admission decision for serve-layer rejections (quota /
    #: backpressure), else None.
    decision: str | None = None

    def to_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "ts": self.ts,
            "algorithm": self.algorithm,
            "variant": self.variant,
            "pulling": self.pulling,
            "query": self.query,
            "latency_s": self.latency_s,
            "phase_times": self.phase_times,
            "counters": self.counters,
        }
        if self.plan_summary is not None:
            out["plan_summary"] = self.plan_summary
        if self.error is not None:
            out["error"] = self.error
        if self.shard_id is not None:
            out["shard_id"] = self.shard_id
        if self.tenant is not None:
            out["tenant"] = self.tenant
        if self.decision is not None:
            out["decision"] = self.decision
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "QueryRecord":
        """Rebuild a record from :meth:`to_dict` output (see ingest)."""
        return cls(
            trace_id=data.get("trace_id", ""),
            ts=data.get("ts", 0.0),
            algorithm=data.get("algorithm", ""),
            variant=data.get("variant", ""),
            pulling=data.get("pulling", ""),
            query=dict(data.get("query", {})),
            latency_s=data.get("latency_s", 0.0),
            phase_times=dict(data.get("phase_times", {})),
            counters=dict(data.get("counters", {})),
            plan_summary=data.get("plan_summary"),
            error=data.get("error"),
            shard_id=data.get("shard_id"),
            tenant=data.get("tenant"),
            decision=data.get("decision"),
        )


def configure(
    enabled_: bool | None = None,
    latency_threshold_s: float | None = None,
    capacity: int | None = None,
    plan_max_bytes: int | None = None,
) -> None:
    """(Re)configure the recorder.

    ``latency_threshold_s`` — queries at or above this latency are
    recorded (0.0 records every query; errors are always recorded).
    ``capacity`` resizes the ring, keeping the newest records.
    ``plan_max_bytes`` caps one record's serialized plan summary;
    oversize plans are replaced by a truncation stub on admission.
    """
    global enabled, _latency_threshold_s, _buffer, _plan_max_bytes
    with _lock:
        if latency_threshold_s is not None:
            _latency_threshold_s = max(0.0, float(latency_threshold_s))
        if capacity is not None:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            _buffer = deque(_buffer, maxlen=int(capacity))
        if plan_max_bytes is not None:
            if plan_max_bytes < 1:
                raise ValueError(
                    f"plan_max_bytes must be >= 1, got {plan_max_bytes}"
                )
            _plan_max_bytes = int(plan_max_bytes)
    if enabled_ is not None:
        enabled = bool(enabled_)


def latency_threshold() -> float:
    return _latency_threshold_s


def capacity() -> int:
    return _buffer.maxlen or DEFAULT_CAPACITY


def _query_args(query) -> dict:
    return {
        "k": query.k,
        "radius": query.radius,
        "lam": query.lam,
        "keyword_masks": list(query.keyword_masks),
        "variant": query.variant.value,
    }


def _stat_counters(stats) -> dict:
    if stats is None:
        return {}
    return {
        "combinations": stats.combinations,
        "features_pulled": stats.features_pulled,
        "objects_scored": stats.objects_scored,
        "io_reads": stats.io_reads,
        "buffer_hits": stats.buffer_hits,
        "node_cache_hits": stats.node_cache_hits,
        "node_cache_misses": stats.node_cache_misses,
        "heap_pops": stats.heap_pops,
        "nodes_expanded": stats.nodes_expanded,
    }


def _plan_summary(plan) -> dict:
    """Compact plan digest — enough to triage without the full plan."""
    summary: dict = {
        "objects_scored": plan.objects_scored,
        "combinations_released": plan.combinations_released,
        "features_pulled": plan.features_pulled_total,
    }
    if plan.combinations is not None:
        summary["combinations_rejected_2r"] = plan.combinations.rejected_2r
        summary["pull_rounds"] = plan.combinations.pull_rounds
    if plan.stds is not None:
        summary["objects_dropped"] = plan.stds.objects_dropped
    if plan.shards:
        summary["shard_outcomes"] = plan.shard_outcomes()
    return summary


def _cap_plan(record: QueryRecord) -> None:
    """Replace an oversize plan summary with a truncation stub."""
    if record.plan_summary is None:
        return
    try:
        size = len(json.dumps(record.plan_summary))
    except (TypeError, ValueError):
        record.plan_summary = {"truncated": True, "reason": "unserializable"}
        return
    if size > _plan_max_bytes:
        record.plan_summary = {"truncated": True, "bytes": size}


def _push(record: QueryRecord) -> None:
    global _total_recorded, _total_evicted
    _cap_plan(record)
    with _lock:
        if len(_buffer) == _buffer.maxlen:
            _total_evicted += 1
        _buffer.append(record)
        _total_recorded += 1
    for hook in list(_hooks):
        try:
            hook(record)
        except Exception:  # noqa: BLE001 — never raise into the query path
            pass


def maybe_record(
    query,
    algorithm: str,
    pulling: str,
    trace_id: str,
    latency_s: float,
    stats=None,
    plan=None,
) -> bool:
    """Record a *successful* query iff it met the latency threshold.

    Returns whether a record was written.  Never raises.
    """
    if not enabled or latency_s < _latency_threshold_s:
        return False
    variant = query.variant.value
    _push(
        QueryRecord(
            trace_id=trace_id,
            ts=time.time(),
            algorithm=algorithm,
            variant=variant,
            pulling=pulling,
            query=_query_args(query),
            latency_s=latency_s,
            phase_times=dict(stats.phase_times) if stats is not None else {},
            counters=_stat_counters(stats),
            plan_summary=_plan_summary(plan) if plan is not None else None,
        )
    )
    return True


def record_error(
    query,
    algorithm: str,
    pulling: str,
    trace_id: str,
    latency_s: float,
    error: BaseException,
    shard_id: int | None = None,
) -> bool:
    """Record a failed query (errors bypass the latency threshold)."""
    if not enabled:
        return False
    if shard_id is None:
        shard_id = getattr(error, "shard_id", None)
    _push(
        QueryRecord(
            trace_id=trace_id,
            ts=time.time(),
            algorithm=algorithm,
            variant=query.variant.value,
            pulling=pulling,
            query=_query_args(query),
            latency_s=latency_s,
            error={"type": type(error).__name__, "message": str(error)},
            shard_id=shard_id,
        )
    )
    return True


def record_rejection(
    query,
    algorithm: str,
    pulling: str,
    trace_id: str,
    latency_s: float,
    tenant: str | None = None,
    decision: str | None = None,
) -> bool:
    """Record a serve-layer admission rejection (quota / backpressure).

    A shed request is diagnostic gold — it is exactly the traffic an
    operator gets paged about — so rejections bypass the latency
    threshold like errors do, carrying the tenant and the gate that
    rejected them.
    """
    if not enabled:
        return False
    _push(
        QueryRecord(
            trace_id=trace_id,
            ts=time.time(),
            algorithm=algorithm,
            variant=query.variant.value,
            pulling=pulling,
            query=_query_args(query),
            latency_s=latency_s,
            tenant=tenant,
            decision=decision,
        )
    )
    return True


def ingest(
    record_dicts, shard_id: int | None = None
) -> int:
    """Adopt records produced in another process into this ring buffer.

    The process-mode shard fan-out runs per-shard queries in worker
    processes whose flight buffers the parent cannot see; workers ship
    their records (as :meth:`QueryRecord.to_dict` payloads) back over
    the result channel and the parent replays them here, stamping
    ``shard_id`` on records that do not already carry one so slow
    per-shard queries are attributable.  Returns how many records were
    adopted; no-ops (returning 0) when recording is disabled.
    """
    if not enabled:
        return 0
    n = 0
    for data in record_dicts:
        record = (
            data if isinstance(data, QueryRecord)
            else QueryRecord.from_dict(data)
        )
        if record.shard_id is None and shard_id is not None:
            record.shard_id = shard_id
        _push(record)
        n += 1
    return n


def records() -> list[QueryRecord]:
    """Buffered records, oldest first (a copy)."""
    with _lock:
        return list(_buffer)


def stats() -> dict:
    """Recorder bookkeeping: buffered / total recorded / evicted."""
    with _lock:
        return {
            "buffered": len(_buffer),
            "capacity": _buffer.maxlen,
            "total_recorded": _total_recorded,
            "total_evicted": _total_evicted,
            "enabled": enabled,
            "latency_threshold_s": _latency_threshold_s,
        }


def _rotate(path: Path, backups: int) -> None:
    """Shift ``path`` -> ``path.1`` -> ... -> ``path.<backups>``."""
    oldest = path.with_name(path.name + f".{backups}")
    if oldest.exists():
        oldest.unlink()
    for i in range(backups - 1, 0, -1):
        src = path.with_name(path.name + f".{i}")
        if src.exists():
            src.rename(path.with_name(path.name + f".{i + 1}"))
    if path.exists() and backups >= 1:
        path.rename(path.with_name(path.name + ".1"))


def dump_jsonl(
    path,
    append: bool = False,
    max_bytes: int | None = None,
    backups: int = 3,
) -> Path:
    """Write buffered records to ``path``, one JSON object per line.

    With ``max_bytes`` set, the dump path becomes size-bounded: when the
    write would push the file past the limit, the existing file rotates
    to ``path.1`` (shifting older backups up to ``path.<backups>``, the
    oldest dropped) and the dump starts a fresh file.  A single dump
    larger than ``max_bytes`` keeps only the *newest* records that fit —
    the ring's own eviction order.  ``append=True`` adds to the current
    file instead of overwriting (the long-running-service shape; pair it
    with ``clear()`` to checkpoint the ring).
    """
    path = Path(path)
    lines = [json.dumps(r.to_dict()) + "\n" for r in records()]
    if max_bytes is not None:
        kept: list[str] = []
        total = 0
        for line in reversed(lines):  # newest last in `lines`
            if total + len(line) > max_bytes:
                break
            kept.append(line)
            total += len(line)
        lines = list(reversed(kept))
        if path.exists():
            if not append:
                # Overwrite mode with a byte cap keeps history: the old
                # file shifts to ``path.1`` instead of being clobbered.
                _rotate(path, backups)
            elif path.stat().st_size + total > max_bytes:
                _rotate(path, backups)
                append = False
    with path.open("a" if append else "w") as fh:
        fh.writelines(lines)
    return path


def clear() -> int:
    """Drop all buffered records; returns how many were dropped."""
    global _total_recorded, _total_evicted
    with _lock:
        n = len(_buffer)
        _buffer.clear()
        _total_recorded = 0
        _total_evicted = 0
    return n
