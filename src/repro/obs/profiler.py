"""Continuous sampling profiler with flight-recorder-triggered capture.

"p99 spiked" is only half an answer; the other half is *what the
process was doing* during the spike.  :class:`SamplingProfiler` keeps a
timer thread that snapshots every thread's stack via
``sys._current_frames()`` at a fixed interval and buffers the collapsed
stacks in a bounded ring.  Because sampling is continuous, the stacks
for a slow query exist *before* anyone knew it was slow — when the
flight recorder admits a record, a hook retroactively captures the ring
samples overlapping that query's lifetime and files them under its
trace id.  The exemplar on the latency histogram's p99 bucket, the
flight record, and the profiler capture then all join on one id.

Output is flamegraph.pl/speedscope-compatible collapsed-stack text
(``root;child;leaf <count>`` per line) via :meth:`collapsed` /
:meth:`write_collapsed`.

Cost model: the profiler is **off by default** and costs nothing when
off (no thread, and the flight hook is only registered while
installed).  When on, each tick walks ``threads x stack-depth`` frames
— at the default 10 ms interval this stays in the low single-digit
percent range (measured in ``benchmarks/bench_telemetry.py``; numbers
in DESIGN §13).  ``sys._current_frames`` takes stacks of *other*
threads without interrupting them; Python guarantees the returned
frames are safe to walk.

Module-level :func:`install` / :func:`uninstall` manage one shared
instance with reference counting, so the ``QueryExecutor(profile=True)``
knob and ``python -m repro.obs --telemetry`` compose without fighting
over lifecycle.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter, OrderedDict, deque
from pathlib import Path

from repro.errors import ReproError
from repro.obs import flight as _flight

#: Default sampling interval: 10 ms — coarse enough to stay cheap,
#: fine enough to attribute queries in the tens-of-ms range.
DEFAULT_INTERVAL_S = 0.010

#: Default ring retention in seconds (bounds memory together with the
#: interval: retention / interval samples are kept).
DEFAULT_RETENTION_S = 120.0

#: Most captures kept (newest win); one capture per admitted slow query.
MAX_CAPTURES = 64


def _collapse(frame) -> str:
    """One thread's stack as ``root;...;leaf`` (flamegraph.pl order)."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{filename}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Periodic whole-process stack sampler (see module docstring)."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        retention_s: float = DEFAULT_RETENTION_S,
    ) -> None:
        if interval_s <= 0:
            raise ReproError(f"interval must be > 0, got {interval_s}")
        if retention_s < interval_s:
            raise ReproError(
                f"retention {retention_s} shorter than interval {interval_s}"
            )
        self.interval_s = interval_s
        self.retention_s = retention_s
        maxlen = max(2, int(retention_s / interval_s))
        #: ring of (mono_ts, (collapsed_stack, ...)) — one tuple entry
        #: per thread sampled at that tick.
        self._samples: deque[tuple[float, tuple[str, ...]]] = deque(
            maxlen=maxlen
        )
        self._captures: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._ticks = 0

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def _sample_once(self) -> None:
        me = threading.get_ident()
        frames = sys._current_frames()
        stacks = tuple(
            _collapse(frame)
            for tid, frame in frames.items()
            if tid != me
        )
        del frames  # drop frame refs promptly
        with self._lock:
            self._samples.append((time.perf_counter(), stacks))
            self._ticks += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    def start(self) -> "SamplingProfiler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def ticks(self) -> int:
        return self._ticks

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _window_samples(
        self, window_s: float | None
    ) -> list[tuple[float, tuple[str, ...]]]:
        with self._lock:
            samples = list(self._samples)
        if window_s is None or not samples:
            return samples
        horizon = time.perf_counter() - window_s
        return [s for s in samples if s[0] >= horizon]

    def collapsed(self, window_s: float | None = None) -> dict[str, int]:
        """``{collapsed_stack: sample_count}`` over the window (or all)."""
        counts: Counter[str] = Counter()
        for _, stacks in self._window_samples(window_s):
            counts.update(stacks)
        return dict(counts)

    def write_collapsed(
        self, path, window_s: float | None = None
    ) -> Path:
        """Write flamegraph.pl-compatible collapsed-stack lines."""
        path = Path(path)
        counts = self.collapsed(window_s)
        with path.open("w") as fh:
            for stack, count in sorted(counts.items()):
                fh.write(f"{stack} {count}\n")
        return path

    # ------------------------------------------------------------------
    # trace-id keyed captures
    # ------------------------------------------------------------------
    def capture(
        self, trace_id: str, lookback_s: float
    ) -> dict:
        """File the last ``lookback_s`` of samples under ``trace_id``.

        Called (via the flight hook) right after a slow query is
        admitted, so the window covers that query's execution.  Returns
        the capture record (also retrievable via :meth:`captures`).
        """
        counts: Counter[str] = Counter()
        n = 0
        for _, stacks in self._window_samples(lookback_s):
            counts.update(stacks)
            n += 1
        record = {
            "trace_id": trace_id,
            "ts": time.time(),
            "lookback_s": lookback_s,
            "samples": n,
            "collapsed": dict(counts),
        }
        with self._lock:
            self._captures[trace_id] = record
            self._captures.move_to_end(trace_id)
            while len(self._captures) > MAX_CAPTURES:
                self._captures.popitem(last=False)
        return record

    def captures(self) -> dict[str, dict]:
        """Trace-id keyed captures, oldest first (a copy)."""
        with self._lock:
            return dict(self._captures)

    def capture_for(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._captures.get(trace_id)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self._captures.clear()
            self._ticks = 0


# ----------------------------------------------------------------------
# module-level shared instance + flight-recorder trigger
# ----------------------------------------------------------------------
_shared: SamplingProfiler | None = None
_install_count = 0
_state_lock = threading.Lock()

#: Extra window beyond the record's latency, covering the gap between
#: query completion and hook invocation.
CAPTURE_SLACK_S = 1.0


def _flight_hook(record) -> None:
    prof = _shared
    if prof is None or not record.trace_id:
        return
    prof.capture(
        record.trace_id, lookback_s=record.latency_s + CAPTURE_SLACK_S
    )


def install(
    interval_s: float = DEFAULT_INTERVAL_S,
    retention_s: float = DEFAULT_RETENTION_S,
) -> bool:
    """Start (or ref-count) the shared profiler + flight trigger.

    Returns True when this call actually started it (first installer);
    nested installs just bump the count.  Parameters only apply to the
    first install.
    """
    global _shared, _install_count
    with _state_lock:
        _install_count += 1
        if _shared is not None:
            return False
        _shared = SamplingProfiler(
            interval_s=interval_s, retention_s=retention_s
        ).start()
        _flight.add_hook(_flight_hook)
        return True


def uninstall() -> bool:
    """Drop one install ref; stops the profiler at zero.  True if stopped."""
    global _shared, _install_count
    with _state_lock:
        if _install_count == 0:
            return False
        _install_count -= 1
        if _install_count > 0 or _shared is None:
            return False
        _flight.remove_hook(_flight_hook)
        _shared.stop()
        _shared = None
        return True


def get() -> SamplingProfiler | None:
    """The shared profiler, if installed."""
    return _shared
